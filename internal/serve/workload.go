// Package serve is the admission-controlled serving control plane over the
// fleet: the long-running-daemon shape of the startup problem. An open-loop
// arrival process (per-tenant Poisson, with an optional flash-crowd burst)
// feeds pod-start requests into an admission queue; pluggable policies
// decide at arrival (and again at dispatch) whether each request is worth
// serving, and admitted requests flow to the fleet scheduler. Everything
// rides the determinism substrate: each tenant draws arrivals from its own
// split PRNG stream, the whole run executes on one simulated kernel, and
// results fingerprint byte-identically across double-runs.
package serve

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"fastiov/internal/sim"
)

// tenantStream is the base PRNG stream index for tenant arrival processes:
// tenant i (in canonical name order) draws stream tenantStream+i. The fleet
// reserves streams [0, hosts) for hosts and 1<<32 for the scheduler; 1<<33
// keeps the serving layer clear of both.
const tenantStream = uint64(1) << 33

// Priority is a request's admission class: under pressure the SLO-aware
// policy sheds low before normal before high.
type Priority uint8

const (
	PrioLow Priority = iota
	PrioNormal
	PrioHigh
)

// String returns the grammar token for the priority.
func (p Priority) String() string {
	switch p {
	case PrioLow:
		return "low"
	case PrioHigh:
		return "high"
	default:
		return "normal"
	}
}

func parsePriority(s string) (Priority, error) {
	switch s {
	case "low":
		return PrioLow, nil
	case "normal":
		return PrioNormal, nil
	case "high":
		return PrioHigh, nil
	}
	return PrioNormal, fmt.Errorf("unknown priority %q (want low|normal|high)", s)
}

// Tenant is one workload source: a named Poisson arrival stream with an
// admission class and a contracted-capacity weight.
type Tenant struct {
	Name string
	// Rate is the tenant's offered arrival rate in requests per second.
	Rate float64
	// Priority is the tenant's admission class (default normal).
	Priority Priority
	// Weight is the tenant's share of contracted capacity under the
	// token-bucket policy (default 1).
	Weight int
}

// Flash is a flash-crowd burst: every tenant's rate multiplies by Factor
// for the window [At, At+For).
type Flash struct {
	At     time.Duration
	Factor float64
	For    time.Duration
}

// Workload is a parsed multi-tenant arrival description. Tenants are held
// in canonical (name) order.
type Workload struct {
	Tenants []Tenant
	Flash   *Flash
}

// ParseWorkload parses the tenant/priority/rate grammar: semicolon-separated
// clauses, each either a tenant
//
//	name:rate=<req/s>[,prio=low|normal|high][,weight=<n>]
//
// (names are [a-z0-9-]+ and unique) or at most one flash-crowd burst
//
//	flash@<start>:x=<factor>[,for=<duration>]
//
// (durations in time.ParseDuration syntax; for defaults to 1s). Example:
//
//	web:rate=60,prio=high;batch:rate=30,prio=low;flash@3s:x=6,for=2s
//
// The canonical rendering (String) sorts tenants by name, omits default
// fields, and re-parses to an identical workload — a fixed point, like
// fault.Plan.String.
func ParseWorkload(spec string) (*Workload, error) {
	w := &Workload{}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("serve: empty workload")
	}
	seen := map[string]bool{}
	for _, clause := range strings.Split(spec, ";") {
		if clause == "" {
			return nil, fmt.Errorf("serve: empty clause in %q", spec)
		}
		if rest, ok := strings.CutPrefix(clause, "flash@"); ok {
			if w.Flash != nil {
				return nil, fmt.Errorf("serve: duplicate flash clause %q", clause)
			}
			fl, err := parseFlash(rest)
			if err != nil {
				return nil, fmt.Errorf("serve: clause %q: %w", clause, err)
			}
			w.Flash = fl
			continue
		}
		t, err := parseTenant(clause)
		if err != nil {
			return nil, fmt.Errorf("serve: clause %q: %w", clause, err)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("serve: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		w.Tenants = append(w.Tenants, t)
	}
	if len(w.Tenants) == 0 {
		return nil, fmt.Errorf("serve: workload %q has no tenants", spec)
	}
	sort.Slice(w.Tenants, func(i, j int) bool { return w.Tenants[i].Name < w.Tenants[j].Name })
	return w, nil
}

func parseTenant(clause string) (Tenant, error) {
	t := Tenant{Weight: 1, Priority: PrioNormal}
	name, kvs, ok := strings.Cut(clause, ":")
	if !ok {
		return t, fmt.Errorf("want name:key=value[,...]")
	}
	if !validName(name) {
		return t, fmt.Errorf("bad tenant name %q (want [a-z0-9-]+)", name)
	}
	t.Name = name
	haveRate := false
	keys := map[string]bool{}
	for _, kv := range strings.Split(kvs, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return t, fmt.Errorf("bad key=value %q", kv)
		}
		if keys[k] {
			return t, fmt.Errorf("duplicate key %q", k)
		}
		keys[k] = true
		switch k {
		case "rate":
			r, err := parseRate(v)
			if err != nil {
				return t, err
			}
			t.Rate = r
			haveRate = true
		case "prio":
			p, err := parsePriority(v)
			if err != nil {
				return t, err
			}
			t.Priority = p
		case "weight":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return t, fmt.Errorf("bad weight %q (want integer >= 1)", v)
			}
			t.Weight = n
		default:
			return t, fmt.Errorf("unknown key %q (want rate|prio|weight)", k)
		}
	}
	if !haveRate {
		return t, fmt.Errorf("tenant %q missing rate", name)
	}
	return t, nil
}

func parseFlash(rest string) (*Flash, error) {
	at, kvs, ok := strings.Cut(rest, ":")
	if !ok {
		return nil, fmt.Errorf("want flash@<start>:x=<factor>[,for=<duration>]")
	}
	start, err := parseDur(at)
	if err != nil || start < 0 {
		return nil, fmt.Errorf("bad flash start %q", at)
	}
	fl := &Flash{At: start, For: time.Second}
	haveX := false
	keys := map[string]bool{}
	for _, kv := range strings.Split(kvs, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad key=value %q", kv)
		}
		if keys[k] {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		keys[k] = true
		switch k {
		case "x":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
				return nil, fmt.Errorf("bad flash factor %q (want finite > 0)", v)
			}
			fl.Factor = f
			haveX = true
		case "for":
			d, err := parseDur(v)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("bad flash duration %q", v)
			}
			fl.For = d
		default:
			return nil, fmt.Errorf("unknown key %q (want x|for)", k)
		}
	}
	if !haveX {
		return nil, fmt.Errorf("flash missing x=<factor>")
	}
	return fl, nil
}

// parseDur accepts any time.ParseDuration form; the canonical rendering
// uses Duration.String, so accepted inputs converge to a fixed point after
// one re-encode (e.g. "90s" canonicalizes to "1m30s").
func parseDur(s string) (time.Duration, error) { return time.ParseDuration(s) }

func parseRate(v string) (float64, error) {
	r, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
		return 0, fmt.Errorf("bad rate %q (want finite >= 0)", v)
	}
	return r, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return false
		}
	}
	return true
}

// fmtRate renders a rate so it re-parses to the identical float64.
func fmtRate(r float64) string { return strconv.FormatFloat(r, 'g', -1, 64) }

// String renders the canonical workload spec: tenants in name order with
// default fields omitted, then the flash clause. ParseWorkload(w.String())
// returns an identical workload, and String is a fixed point:
// Parse(String(w)).String() == String(w).
func (w *Workload) String() string {
	var b strings.Builder
	for i, t := range w.Tenants {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s:rate=%s", t.Name, fmtRate(t.Rate))
		if t.Priority != PrioNormal {
			fmt.Fprintf(&b, ",prio=%s", t.Priority)
		}
		if t.Weight != 1 {
			fmt.Fprintf(&b, ",weight=%d", t.Weight)
		}
	}
	if w.Flash != nil {
		fmt.Fprintf(&b, ";flash@%s:x=%s,for=%s", w.Flash.At, fmtRate(w.Flash.Factor), w.Flash.For)
	}
	return b.String()
}

// TotalRate sums the tenants' base (non-flash) offered rates.
func (w *Workload) TotalRate() float64 {
	var total float64
	for _, t := range w.Tenants {
		total += t.Rate
	}
	return total
}

// Scaled returns a copy whose tenant rates are scaled so the base offered
// rate totals target requests/second (proportions preserved). target <= 0
// or a zero-rate workload returns an unscaled copy.
func (w *Workload) Scaled(target float64) *Workload {
	out := &Workload{Tenants: append([]Tenant(nil), w.Tenants...)}
	if w.Flash != nil {
		fl := *w.Flash
		out.Flash = &fl
	}
	total := w.TotalRate()
	if target <= 0 || total <= 0 {
		return out
	}
	for i := range out.Tenants {
		out.Tenants[i].Rate *= target / total
	}
	return out
}

// Request is one pod-start arrival.
type Request struct {
	// ID is globally unique across the run, assigned in arrival order, and
	// becomes the container id on the fleet (so trace binding sees the
	// standard ctr-<id> names).
	ID int
	// Tenant and Priority identify the source stream.
	Tenant   string
	Priority Priority
	// At is the arrival instant, as an offset from serving start.
	At time.Duration
}

// Arrivals draws every tenant's Poisson arrival process over [0, window)
// and merges them into one arrival-ordered request list. Tenant i (name
// order) draws from sim.SplitSeed(seed, tenantStream+i), so streams never
// collide with host or scheduler streams and adding a tenant never shifts
// another tenant's draws. The flash-crowd window multiplies the
// instantaneous rate piecewise; arrivals are drawn by unit-exponential
// integration across the rate steps, so the process stays memoryless across
// the flash boundaries.
func (w *Workload) Arrivals(seed uint64, window time.Duration) []Request {
	var all []Request
	for i, t := range w.Tenants {
		rng := sim.NewRand(sim.SplitSeed(seed, tenantStream+uint64(i)))
		for _, at := range poissonTimes(rng, t.Rate, w.Flash, window) {
			all = append(all, Request{Tenant: t.Name, Priority: t.Priority, At: at})
		}
	}
	// Merge deterministically: by time, then tenant name (per-tenant order
	// is already increasing, so the sort is total).
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Tenant < all[j].Tenant
	})
	for i := range all {
		all[i].ID = i
	}
	return all
}

// poissonTimes draws one tenant's arrival instants in [0, window) for a
// piecewise-constant rate: base everywhere, base*flash.Factor inside the
// flash window. Each inter-arrival consumes one unit-exponential deviate,
// integrated across rate steps.
func poissonTimes(rng *sim.Rand, base float64, flash *Flash, window time.Duration) []time.Duration {
	if base <= 0 || window <= 0 {
		return nil
	}
	end := window.Seconds()
	// Rate steps as seconds offsets.
	var fStart, fEnd float64
	factor := 1.0
	if flash != nil {
		fStart, fEnd = flash.At.Seconds(), (flash.At + flash.For).Seconds()
		factor = flash.Factor
	}
	rateAt := func(t float64) float64 {
		if flash != nil && t >= fStart && t < fEnd {
			return base * factor
		}
		return base
	}
	nextStep := func(t float64) float64 {
		if flash == nil {
			return math.Inf(1)
		}
		switch {
		case t < fStart:
			return fStart
		case t < fEnd:
			return fEnd
		}
		return math.Inf(1)
	}
	var out []time.Duration
	t := 0.0
	for {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		e := -math.Log(u) // unit-exponential deviate
		for e > 0 {
			r := rateAt(t)
			step := nextStep(t)
			need := e / r
			if t+need < step {
				t += need
				e = 0
			} else {
				e -= (step - t) * r
				t = step
			}
		}
		if t >= end {
			return out
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
}
