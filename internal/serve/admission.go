package serve

import (
	"fmt"
	"time"
)

// Admission policy names.
const (
	// PolicyFIFO is the no-admission baseline: every request queues, nothing
	// sheds, and under sustained overload the queue — and the admitted p99 —
	// grow without bound.
	PolicyFIFO = "fifo"
	// PolicyTokenBucket rate-limits each tenant to its weighted share of the
	// fleet's contracted capacity, with a burst allowance.
	PolicyTokenBucket = "token-bucket"
	// PolicySLOAware sheds by predicted sojourn: it estimates queue wait from
	// the live completion rate plus the fleet's saturation signals (free-VF
	// headroom, devset waiters) and rejects requests whose priority-scaled
	// latency budget the estimate already blows; queued requests are
	// re-checked at dispatch and shed mid-queue once their budget is spent.
	PolicySLOAware = "slo-aware"
)

// Policies lists the admission policies in presentation order.
func Policies() []string { return []string{PolicyFIFO, PolicyTokenBucket, PolicySLOAware} }

// View is the read-only control-plane snapshot a policy decides on: current
// queue state, live fleet saturation signals, and the completion history.
// Building one costs no simulated time and no randomness.
type View struct {
	// Now is the current simulated instant; Elapsed the time since serving
	// started.
	Now, Elapsed time.Duration
	// QueueDepth counts requests admitted to the queue but not yet
	// dispatched; Inflight counts starts in progress on the fleet.
	QueueDepth, Inflight int
	// FreeVFHeadroom, DevsetWaiters, and MembwBusy are the fleet's live
	// saturation signals (fleet.FreeVFHeadroom etc.).
	FreeVFHeadroom, DevsetWaiters int
	MembwBusy                     time.Duration
	// Completed counts finished startups so far; StartupEWMA is their
	// smoothed end-to-end startup time.
	Completed   int
	StartupEWMA time.Duration
	// SLO is the configured sojourn target.
	SLO time.Duration
}

// Policy decides a request's fate at two instants: arrival (Admit) and
// dispatch (Revalidate — false sheds the request mid-queue). Policies are
// deterministic: same request, same view, same answer.
type Policy interface {
	Name() string
	Admit(r *Request, v View) bool
	Revalidate(r *Request, v View) bool
}

// PolicyConfig parameterizes NewPolicy.
type PolicyConfig struct {
	// SLO is the sojourn target the SLO-aware policy defends.
	SLO time.Duration
	// ContractRate is the fleet-wide contracted capacity in requests per
	// second, split across tenants by weight (token-bucket).
	ContractRate float64
	// Burst is each tenant's bucket capacity in tokens (minimum 1).
	Burst float64
	// Tenants lists the workload's tenants in canonical order.
	Tenants []Tenant
}

// NewPolicy builds the named admission policy.
func NewPolicy(name string, cfg PolicyConfig) (Policy, error) {
	switch name {
	case PolicyFIFO:
		return fifoPolicy{}, nil
	case PolicyTokenBucket:
		return newTokenBucket(cfg), nil
	case PolicySLOAware:
		return &sloAware{slo: cfg.SLO}, nil
	}
	return nil, fmt.Errorf("serve: unknown admission policy %q (want %v)", name, Policies())
}

// fifoPolicy admits everything and never sheds: the no-admission baseline.
type fifoPolicy struct{}

func (fifoPolicy) Name() string                   { return PolicyFIFO }
func (fifoPolicy) Admit(*Request, View) bool      { return true }
func (fifoPolicy) Revalidate(*Request, View) bool { return true }

// bucket is one tenant's token bucket: tokens refill continuously at rate
// per second up to burst, and each admission costs one token. Refill is
// computed lazily from the last-touched instant, so two arrivals at the
// same simulated instant see the same fill level and drain it token by
// token — the equal-sim-time edge case the tests pin.
type bucket struct {
	tokens float64
	last   time.Duration
	rate   float64
	burst  float64
}

func (b *bucket) take(now time.Duration) bool {
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// tokenBucket holds one bucket per tenant, sized by weight share of the
// contracted rate. Buckets start full.
type tokenBucket struct {
	buckets map[string]*bucket
}

func newTokenBucket(cfg PolicyConfig) *tokenBucket {
	burst := cfg.Burst
	if burst < 1 {
		burst = 1
	}
	weightSum := 0
	for _, t := range cfg.Tenants {
		weightSum += t.Weight
	}
	tb := &tokenBucket{buckets: make(map[string]*bucket, len(cfg.Tenants))}
	for _, t := range cfg.Tenants {
		rate := 0.0
		if weightSum > 0 {
			rate = cfg.ContractRate * float64(t.Weight) / float64(weightSum)
		}
		tb.buckets[t.Name] = &bucket{tokens: burst, rate: rate, burst: burst}
	}
	return tb
}

func (tb *tokenBucket) Name() string { return PolicyTokenBucket }

func (tb *tokenBucket) Admit(r *Request, v View) bool {
	b := tb.buckets[r.Tenant]
	if b == nil {
		return false
	}
	return b.take(v.Now)
}

func (tb *tokenBucket) Revalidate(*Request, View) bool { return true }

// Peek reads a tenant's fill level at now without draining or advancing
// the bucket — the journey recorder attaches the pre-decision token state
// to the admission span, and an observer must not perturb the decision an
// immediately following take would make.
func (tb *tokenBucket) Peek(tenant string, now time.Duration) (float64, bool) {
	b := tb.buckets[tenant]
	if b == nil {
		return 0, false
	}
	tokens := b.tokens
	if now > b.last {
		tokens += b.rate * (now - b.last).Seconds()
		if tokens > b.burst {
			tokens = b.burst
		}
	}
	return tokens, true
}

// sloAware estimates each request's sojourn and sheds the ones whose
// priority-scaled budget is already spent — at arrival from the predicted
// queue wait, and again at dispatch from the actually elapsed wait.
type sloAware struct {
	slo time.Duration
}

func (s *sloAware) Name() string { return PolicySLOAware }

// budget is the priority-scaled sojourn target: high-priority requests may
// spend 85% of the SLO (the margin absorbs estimation error, keeping the
// realized p99 inside the SLO), normal 60%, low 40% — under pressure the
// classes shed in that order.
func (s *sloAware) budget(p Priority) time.Duration {
	switch p {
	case PrioHigh:
		return s.slo * 4 / 5
	case PrioLow:
		return s.slo * 2 / 5
	}
	return s.slo * 3 / 5
}

// estWait predicts the queue wait ahead of a new arrival: queue depth over
// the observed completion rate (Little's-law style), sharpened by the live
// saturation signals — zero free-VF headroom means dispatch itself will
// stall, and each devset waiter is serialized work already committed.
func (s *sloAware) estWait(v View) time.Duration {
	if v.Completed == 0 || v.Elapsed <= 0 {
		// Cold start: no completion history yet, nothing to predict from.
		return 0
	}
	rate := float64(v.Completed) / v.Elapsed.Seconds()
	wait := time.Duration(float64(v.QueueDepth+1) / rate * float64(time.Second))
	if v.FreeVFHeadroom <= 0 {
		wait += s.slo / 4
	}
	wait += time.Duration(v.DevsetWaiters) * 20 * time.Millisecond
	return wait
}

// Explain returns the components of the admission inequality — the
// predicted wait plus startup EWMA against the priority-scaled budget —
// for the journey recorder's admission span. Pure reads.
func (s *sloAware) Explain(r *Request, v View) (est, budget time.Duration) {
	return s.estWait(v) + v.StartupEWMA, s.budget(r.Priority)
}

func (s *sloAware) Admit(r *Request, v View) bool {
	return s.estWait(v)+v.StartupEWMA <= s.budget(r.Priority)
}

func (s *sloAware) Revalidate(r *Request, v View) bool {
	waited := v.Elapsed - r.At // time spent queued since the arrival instant
	return waited+v.StartupEWMA <= s.budget(r.Priority)
}
