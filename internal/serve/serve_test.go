package serve

import (
	"bytes"
	"testing"
	"time"

	"fastiov/internal/cluster"
)

// testConfig is a small-but-loaded serving run: 2 hosts at rate 48 pushes
// vanilla past saturation so every policy exercises its shed paths, while a
// 3s window keeps each run in the tens of milliseconds.
func testConfig(policy, baseline string, seed uint64) Config {
	return Config{
		Baseline: baseline,
		Policy:   policy,
		Hosts:    2,
		Rate:     48,
		Window:   3 * time.Second,
		Seed:     seed,
		Metrics:  true,
		Audit:    true,
	}
}

func mustServe(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("serve.Run(%s/%s): %v", cfg.Baseline, cfg.Policy, err)
	}
	return res
}

// TestServeDeterministic double-runs every policy on both headline baselines
// and demands byte-identical fingerprints — arrival draws, admission
// decisions, fleet placement, audits, and observer digests all replay.
func TestServeDeterministic(t *testing.T) {
	for _, baseline := range []string{cluster.BaselineVanilla, cluster.BaselineFastIOV} {
		for _, policy := range Policies() {
			cfg := testConfig(policy, baseline, 7)
			cfg.Trace = true
			a := mustServe(t, cfg)
			b := mustServe(t, cfg)
			if !bytes.Equal(a.Fingerprint(), b.Fingerprint()) {
				t.Errorf("%s/%s: double-run fingerprints differ", baseline, policy)
			}
			// A different seed must actually reach the simulation.
			cfg2 := cfg
			cfg2.Seed = 8
			c := mustServe(t, cfg2)
			if bytes.Equal(a.Fingerprint(), c.Fingerprint()) {
				t.Errorf("%s/%s: seeds 7 and 8 produced identical runs", baseline, policy)
			}
		}
	}
}

// TestServeObserverTransparency pins the Canonical contract: tracing and
// metrics observe without perturbing, so the canonical block is identical
// with observers on and off.
func TestServeObserverTransparency(t *testing.T) {
	cfg := testConfig(PolicySLOAware, cluster.BaselineVanilla, 11)
	plain := cfg
	plain.Trace, plain.Metrics, plain.Audit = false, false, false
	observed := cfg
	observed.Trace = true
	a := mustServe(t, plain)
	b := mustServe(t, observed)
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Error("observers perturbed the canonical serving result")
	}
}

// TestServeConservation is the request-conservation invariant: at every
// sampler tick arrived == admitted + shed + in-queue across the sampled
// series, the same identity holds at drain, and the fleet's leak audit is
// identically zero even though requests shed both at admission and
// mid-queue.
func TestServeConservation(t *testing.T) {
	cfg := testConfig(PolicySLOAware, cluster.BaselineVanilla, 3)
	cfg.MetricsCadence = 20 * time.Millisecond
	res := mustServe(t, cfg)

	// The run must actually exercise both shed paths, or the invariant test
	// proves nothing.
	if res.ShedAdmission == 0 {
		t.Error("config never shed at admission; invariant untested")
	}
	if res.ShedQueue == 0 {
		t.Error("config never shed mid-queue; invariant untested")
	}

	m := res.Fleet.Metrics
	if m == nil {
		t.Fatal("metrics registry missing")
	}
	arrived := m.Series(MetricArrived)
	admitted := m.Series(MetricAdmitted)
	shed := m.Series(MetricShed)
	queue := m.Series(MetricQueueDepth)
	if len(arrived) == 0 {
		t.Fatal("no samples recorded")
	}
	for i := range arrived {
		if arrived[i] != admitted[i]+shed[i]+queue[i] {
			t.Fatalf("tick %d: arrived %v != admitted %v + shed %v + queue %v",
				i, arrived[i], admitted[i], shed[i], queue[i])
		}
		if i > 0 && arrived[i] < arrived[i-1] {
			t.Fatalf("tick %d: arrived counter went backwards", i)
		}
	}

	// Drain identities over the final counters.
	if res.Arrived != res.Admitted+res.Shed() {
		t.Errorf("at drain: arrived %d != admitted %d + shed %d",
			res.Arrived, res.Admitted, res.Shed())
	}
	if res.Admitted != res.Completed+res.Failed {
		t.Errorf("at drain: admitted %d != completed %d + failed %d",
			res.Admitted, res.Completed, res.Failed)
	}
	// Per-tenant tallies sum to the totals.
	var ta, tadm, tshed, tdone int
	for _, ts := range res.Tenants {
		ta += ts.Arrived
		tadm += ts.Admitted
		tshed += ts.Shed
		tdone += ts.Completed
	}
	if ta != res.Arrived || tadm != res.Admitted || tshed != res.Shed() || tdone != res.Completed {
		t.Errorf("tenant tallies (%d,%d,%d,%d) disagree with totals (%d,%d,%d,%d)",
			ta, tadm, tshed, tdone, res.Arrived, res.Admitted, res.Shed(), res.Completed)
	}

	// Shedding must not leak host resources: every audit clean.
	if !res.Fleet.CleanPerHost() {
		t.Error("per-host audits not clean after shedding run")
	}
	if !res.Fleet.Leaks.Clean() {
		t.Errorf("fleet-wide leak audit: %s", res.Fleet.Leaks)
	}
}

// TestServeQueueCapSheds pins the bounded-queue behavior: with a tiny cap
// even the FIFO baseline sheds, and the audits stay clean.
func TestServeQueueCapSheds(t *testing.T) {
	cfg := testConfig(PolicyFIFO, cluster.BaselineVanilla, 5)
	cfg.QueueCap = 4
	res := mustServe(t, cfg)
	if res.ShedAdmission == 0 {
		t.Error("queue cap 4 under overload never shed")
	}
	if res.Arrived != res.Admitted+res.Shed() {
		t.Errorf("conservation broken under queue cap: %d != %d + %d",
			res.Arrived, res.Admitted, res.Shed())
	}
	if !res.Fleet.CleanPerHost() || !res.Fleet.Leaks.Clean() {
		t.Error("audits not clean under queue-cap shedding")
	}
}

// TestServeHeadline pins the acceptance headline at test scale: past
// vanilla's saturation point FIFO's p99 sojourn blows through the SLO while
// SLO-aware shedding holds p99 near its target by trading goodput.
func TestServeHeadline(t *testing.T) {
	fifo := mustServe(t, testConfig(PolicyFIFO, cluster.BaselineVanilla, 1))
	slo := mustServe(t, testConfig(PolicySLOAware, cluster.BaselineVanilla, 1))
	if fifo.Sojourns.N() == 0 || slo.Sojourns.N() == 0 {
		t.Fatal("headline runs completed nothing")
	}
	fifoP99 := fifo.Sojourns.P99()
	sloP99 := slo.Sojourns.P99()
	if fifoP99 <= fifo.SLO {
		t.Errorf("fifo under overload: p99 %v inside SLO %v — not saturated", fifoP99, fifo.SLO)
	}
	// Allow a small estimation margin over the target.
	if limit := slo.SLO * 5 / 4; sloP99 > limit {
		t.Errorf("slo-aware p99 %v above %v (SLO %v + margin)", sloP99, limit, slo.SLO)
	}
	if slo.Shed() == 0 {
		t.Error("slo-aware held p99 without shedding — config not past saturation")
	}
}

// TestServeFairnessBounds sanity-checks Jain's index: within (0, 1] and 1.0
// when nothing sheds.
func TestServeFairnessBounds(t *testing.T) {
	cfg := testConfig(PolicyFIFO, cluster.BaselineFastIOV, 2)
	res := mustServe(t, cfg)
	if f := res.Fairness(); f != 1 {
		t.Errorf("fifo admits everything; fairness = %v, want 1", f)
	}
	shedding := mustServe(t, testConfig(PolicyTokenBucket, cluster.BaselineVanilla, 2))
	if f := shedding.Fairness(); f <= 0 || f > 1 {
		t.Errorf("fairness %v outside (0, 1]", f)
	}
}

func TestServeConfigErrors(t *testing.T) {
	if _, err := Run(Config{Baseline: cluster.BaselineVanilla, Policy: "bogus"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Run(Config{Baseline: cluster.BaselineVanilla, Policy: PolicyFIFO, Workload: "nope"}); err == nil {
		t.Error("bad workload accepted")
	}
	if _, err := Run(Config{Baseline: cluster.BaselineVanilla, Policy: PolicyFIFO, Workload: "idle:rate=0"}); err == nil {
		t.Error("arrival-free workload accepted")
	}
	if _, err := Run(Config{Baseline: "bogus", Policy: PolicyFIFO}); err == nil {
		t.Error("unknown baseline accepted")
	}
}
