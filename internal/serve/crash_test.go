package serve

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"fastiov/internal/cluster"
	"fastiov/internal/fault"
	"fastiov/internal/fleet"
)

// crashConfig is the serving-under-failure testbed: a mid-window host crash
// with recovery, so dispatchers see both the kill (in-flight starts die)
// and the detection window (placements land on a host already dead).
func crashConfig(policy, baseline string, seed uint64, plan string) Config {
	pl, err := fault.ParsePlan(plan)
	if err != nil {
		panic(fmt.Sprintf("crashConfig: %v", err))
	}
	return Config{
		Baseline: baseline,
		Policy:   policy,
		Hosts:    2,
		Rate:     48,
		Window:   3 * time.Second,
		Seed:     seed,
		Faults:   pl,
		Metrics:  true,
		Audit:    true,
	}
}

const crashPlan = "host-crash@600ms:host=0;host-recover=300ms"

// TestServeCrashDeterminism double-runs the serving plane over a crashing,
// recovering fleet for every admission policy: reroute backoffs, fresh
// retry ids, and the heartbeat monitor are all on the simulated clock, so
// fingerprints must stay byte-identical.
func TestServeCrashDeterminism(t *testing.T) {
	for _, baseline := range []string{cluster.BaselineVanilla, cluster.BaselineFastIOV} {
		for _, policy := range Policies() {
			t.Run(baseline+"/"+policy, func(t *testing.T) {
				cfg := crashConfig(policy, baseline, 7, crashPlan)
				a := mustServe(t, cfg)
				b := mustServe(t, cfg)
				if a.Fleet.HostCrashes == 0 {
					t.Fatal("no crash fired; the property is vacuous")
				}
				if !bytes.Equal(a.Fingerprint(), b.Fingerprint()) {
					t.Errorf("crash serving run diverged:\n--- run1\n%s\n--- run2\n%s",
						a.Fingerprint(), b.Fingerprint())
				}
			})
		}
	}
}

// TestServeCrashRerouting: a mid-window crash must actually be seen by the
// serving layer (lost attempts counted) and absorbed by it (reroutes
// recover some of them), while request conservation still closes:
// admitted == completed + failed, with give-ups inside failed.
func TestServeCrashRerouting(t *testing.T) {
	for _, baseline := range []string{cluster.BaselineVanilla, cluster.BaselineFastIOV} {
		t.Run(baseline, func(t *testing.T) {
			res := mustServe(t, crashConfig(PolicySLOAware, baseline, 3, crashPlan))
			if res.Fleet.HostCrashes == 0 {
				t.Fatal("no crash fired")
			}
			if res.CrashLost == 0 {
				t.Error("crash killed no start attempts; reroute path untested")
			}
			if res.Rerouted == 0 {
				t.Error("no attempt was rerouted")
			}
			if res.Rerouted+res.CrashGiveups != res.CrashLost {
				t.Errorf("lost %d != rerouted %d + gaveup %d",
					res.CrashLost, res.Rerouted, res.CrashGiveups)
			}
			if res.Admitted != res.Completed+res.Failed {
				t.Errorf("admitted %d != completed %d + failed %d",
					res.Admitted, res.Completed, res.Failed)
			}
			if res.CrashGiveups > res.Failed {
				t.Errorf("give-ups %d exceed failures %d", res.CrashGiveups, res.Failed)
			}
			if !res.Fleet.Leaks.Clean() {
				t.Errorf("fleet audit dirty under serving crash churn:\n%s", res.Fleet.Leaks)
			}
		})
	}
}

// TestServeCrashTraceBinding: rerouted attempts mint fresh container ids,
// so the trace layer's one-proc-per-container binding (and the critical
// path extraction built on it) must keep working across a crash.
func TestServeCrashTraceBinding(t *testing.T) {
	cfg := crashConfig(PolicyFIFO, cluster.BaselineFastIOV, 5, crashPlan)
	cfg.Trace = true
	res := mustServe(t, cfg)
	if res.Fleet.HostCrashes == 0 || res.CrashLost == 0 {
		t.Fatal("crash/reroute did not fire; binding property untested")
	}
	// mustServe already fails the test if critical-path verification (run
	// inside fleet.Finish for traced runs) rejects the binding.
	if res.Fleet.Trace == nil {
		t.Fatal("trace missing")
	}
}

// TestServeAdmissionSeesShrunkenFleet: while a host is down the admission
// view's free-VF headroom (the sampled fleet_free_vfs gauge feeds the same
// FreeVFHeadroom signal) excludes the dead host's whole pool, so
// capacity-sensitive policies see the shrunken fleet immediately.
func TestServeAdmissionSeesShrunkenFleet(t *testing.T) {
	// No recovery: host 0 (the full 256-VF profile) stays dark for the
	// rest of the window.
	cfg := crashConfig(PolicySLOAware, cluster.BaselineVanilla, 9, "host-crash@500ms:host=0")
	cfg.MetricsCadence = 50 * time.Millisecond
	res := mustServe(t, cfg)
	if res.Fleet.HostCrashes != 1 {
		t.Fatalf("%d crashes, want 1", res.Fleet.HostCrashes)
	}
	headroom := res.Fleet.Metrics.Series(MetricHeadroom)
	raw := res.Fleet.Metrics.Series(fleet.MetricFleetFreeVFs)
	if len(headroom) < 4 || len(raw) != len(headroom) {
		t.Fatalf("bad sample counts: headroom %d raw %d", len(headroom), len(raw))
	}
	// Host 0 is the full DefaultHostSpec 256-VF profile; once the heartbeat
	// monitor flips it Down the admission headroom must shed its whole pool
	// (host 1's cap is 128) while the raw free-VF gauge still counts the
	// corpse's stranded pool.
	first, last := headroom[0], headroom[len(headroom)-1]
	if first <= 256 {
		t.Fatalf("pre-crash headroom %v does not cover host 0's pool", first)
	}
	if last > 128 {
		t.Errorf("post-crash admission headroom %v still counts the dead host", last)
	}
	if rawLast := raw[len(raw)-1]; rawLast <= 128 {
		t.Errorf("raw free-VF gauge %v lost the dead host's pool; contrast property is vacuous", rawLast)
	}
}

// TestServeCrashMetricsGated: the crash instruments register only under
// host-fault plans, so fault-free metric output is byte-identical to
// pre-failure-domain builds.
func TestServeCrashMetricsGated(t *testing.T) {
	plain := mustServe(t, testConfig(PolicyFIFO, cluster.BaselineVanilla, 2))
	if m := plain.Fleet.Metrics; m == nil {
		t.Fatal("metrics registry missing")
	} else if s := m.Series(MetricCrashLost); s != nil {
		t.Error("crash-lost instrument registered on a fault-free run")
	}
	crashed := mustServe(t, crashConfig(PolicyFIFO, cluster.BaselineVanilla, 2, crashPlan))
	if s := crashed.Fleet.Metrics.Series(MetricCrashLost); s == nil {
		t.Error("crash-lost instrument missing under a host-crash plan")
	}
}

// TestServeAllHostsDownGiveUp: with every host crashed and no recovery, the
// serving layer must not hot-spin — admitted requests back off and give up
// within their SLO budget, and the run drains.
func TestServeAllHostsDownGiveUp(t *testing.T) {
	cfg := crashConfig(PolicyFIFO, cluster.BaselineVanilla, 4,
		"host-crash@400ms:host=0;host-crash@400ms:host=1")
	res := mustServe(t, cfg)
	if res.Fleet.HostCrashes != 2 {
		t.Fatalf("%d crashes, want 2", res.Fleet.HostCrashes)
	}
	if res.CrashGiveups == 0 {
		t.Error("dark fleet produced no give-ups")
	}
	if res.Admitted != res.Completed+res.Failed {
		t.Errorf("admitted %d != completed %d + failed %d",
			res.Admitted, res.Completed, res.Failed)
	}
	if !res.Fleet.Leaks.Clean() {
		t.Errorf("dark-fleet audit dirty:\n%s", res.Fleet.Leaks)
	}
}
