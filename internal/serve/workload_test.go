package serve

import (
	"strings"
	"testing"
	"time"
)

func TestParseWorkloadValid(t *testing.T) {
	w, err := ParseWorkload("web:rate=60,prio=high;batch:rate=30,prio=low,weight=2;flash@3s:x=6,for=2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(w.Tenants))
	}
	// Canonical order is by name: batch before web.
	b, web := w.Tenants[0], w.Tenants[1]
	if b.Name != "batch" || b.Rate != 30 || b.Priority != PrioLow || b.Weight != 2 {
		t.Errorf("batch = %+v", b)
	}
	if web.Name != "web" || web.Rate != 60 || web.Priority != PrioHigh || web.Weight != 1 {
		t.Errorf("web = %+v", web)
	}
	if w.Flash == nil || w.Flash.At != 3*time.Second || w.Flash.Factor != 6 || w.Flash.For != 2*time.Second {
		t.Errorf("flash = %+v", w.Flash)
	}
	if got := w.TotalRate(); got != 90 {
		t.Errorf("TotalRate = %v, want 90", got)
	}
}

func TestParseWorkloadDefaults(t *testing.T) {
	w, err := ParseWorkload("api:rate=10")
	if err != nil {
		t.Fatal(err)
	}
	tn := w.Tenants[0]
	if tn.Priority != PrioNormal || tn.Weight != 1 {
		t.Errorf("defaults = %+v, want prio=normal weight=1", tn)
	}
	if w.Flash != nil {
		t.Errorf("unexpected flash %+v", w.Flash)
	}
	// flash "for" defaults to 1s.
	w2, err := ParseWorkload("api:rate=10;flash@1s:x=2")
	if err != nil {
		t.Fatal(err)
	}
	if w2.Flash.For != time.Second {
		t.Errorf("flash for = %v, want 1s", w2.Flash.For)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"", "empty workload"},
		{"   ", "empty workload"},
		{";", "empty clause"},
		{"api:rate=10;", "empty clause"},
		{"api", "want name:key=value"},
		{"API:rate=10", "bad tenant name"},
		{"a_b:rate=10", "bad tenant name"},
		{":rate=10", "bad tenant name"},
		{"api:rate", "bad key=value"},
		{"api:prio=high", "missing rate"},
		{"api:rate=abc", "bad rate"},
		{"api:rate=NaN", "bad rate"},
		{"api:rate=+Inf", "bad rate"},
		{"api:rate=-1", "bad rate"},
		{"api:rate=10,prio=urgent", "unknown priority"},
		{"api:rate=10,weight=0", "bad weight"},
		{"api:rate=10,weight=x", "bad weight"},
		{"api:rate=10,speed=9", "unknown key"},
		{"api:rate=10,rate=20", "duplicate key"},
		{"api:rate=10;api:rate=20", "duplicate tenant"},
		{"flash@1s:x=2", "no tenants"},
		{"api:rate=10;flash@1s:x=2;flash@2s:x=3", "duplicate flash"},
		{"api:rate=10;flash@-1s:x=2", "bad flash start"},
		{"api:rate=10;flash@oops:x=2", "bad flash start"},
		{"api:rate=10;flash@1s:for=2s", "flash missing x"},
		{"api:rate=10;flash@1s:x=0", "bad flash factor"},
		{"api:rate=10;flash@1s:x=NaN", "bad flash factor"},
		{"api:rate=10;flash@1s:x=2,for=0s", "bad flash duration"},
		{"api:rate=10;flash@1s:x=2,dur=1s", "unknown key"},
	}
	for _, c := range cases {
		w, err := ParseWorkload(c.spec)
		if err == nil {
			t.Errorf("ParseWorkload(%q) = %v, want error", c.spec, w)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseWorkload(%q) error %q missing %q", c.spec, err, c.wantSub)
		}
	}
}

// TestWorkloadStringFixedPoint pins the grammar's canonical-form contract:
// String re-parses to an identical workload and re-encoding is a fixed point
// even for inputs whose duration syntax normalizes (90s -> 1m30s).
func TestWorkloadStringFixedPoint(t *testing.T) {
	specs := []string{
		DefaultWorkloadSpec,
		"api:rate=10",
		"web:rate=60,prio=high;batch:rate=30,prio=low,weight=2",
		"a:rate=0.5;b:rate=1e-05",
		"api:rate=10;flash@90s:x=6,for=150s", // durations normalize
	}
	for _, spec := range specs {
		w, err := ParseWorkload(spec)
		if err != nil {
			t.Fatalf("ParseWorkload(%q): %v", spec, err)
		}
		canon := w.String()
		w2, err := ParseWorkload(canon)
		if err != nil {
			t.Fatalf("re-parse of canonical %q: %v", canon, err)
		}
		if got := w2.String(); got != canon {
			t.Errorf("String not a fixed point: %q -> %q -> %q", spec, canon, got)
		}
	}
}

func TestWorkloadScaled(t *testing.T) {
	w, err := ParseWorkload("a:rate=10;b:rate=30")
	if err != nil {
		t.Fatal(err)
	}
	s := w.Scaled(80)
	if got := s.TotalRate(); got != 80 {
		t.Errorf("scaled total = %v, want 80", got)
	}
	if s.Tenants[0].Rate != 20 || s.Tenants[1].Rate != 60 {
		t.Errorf("proportions not preserved: %+v", s.Tenants)
	}
	// target <= 0 is a no-op copy, and the copy must not alias the original.
	u := w.Scaled(0)
	u.Tenants[0].Rate = 999
	if w.Tenants[0].Rate != 10 {
		t.Error("Scaled copy aliases the source workload")
	}
}

func TestArrivalsDeterministicAndOrdered(t *testing.T) {
	w, err := ParseWorkload("web:rate=40,prio=high;api:rate=20;flash@2s:x=4,for=1s")
	if err != nil {
		t.Fatal(err)
	}
	a := w.Arrivals(42, 5*time.Second)
	b := w.Arrivals(42, 5*time.Second)
	if len(a) == 0 {
		t.Fatal("no arrivals drawn")
	}
	if len(a) != len(b) {
		t.Fatalf("double draw lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical draws: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := range a {
		if a[i].ID != i {
			t.Errorf("arrival %d has ID %d", i, a[i].ID)
		}
		if a[i].At < 0 || a[i].At >= 5*time.Second {
			t.Errorf("arrival %d at %v outside window", i, a[i].At)
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Errorf("arrivals out of order at %d: %v < %v", i, a[i].At, a[i-1].At)
		}
	}
	if c := w.Arrivals(43, 5*time.Second); len(c) == len(a) && c[0].At == a[0].At {
		// Different seeds should draw different processes; identical first
		// instants with identical lengths would mean the seed is ignored.
		same := true
		for i := range c {
			if c[i].At != a[i].At {
				same = false
				break
			}
		}
		if same {
			t.Error("seed 42 and 43 drew identical arrival schedules")
		}
	}
}

// TestArrivalsStreamIsolation pins the split-stream contract: adding a tenant
// must not shift an existing tenant's draws.
func TestArrivalsStreamIsolation(t *testing.T) {
	solo, _ := ParseWorkload("api:rate=20")
	both, _ := ParseWorkload("api:rate=20;web:rate=40")
	window := 5 * time.Second
	want := solo.Arrivals(7, window)
	var got []Request
	for _, r := range both.Arrivals(7, window) {
		if r.Tenant == "api" {
			got = append(got, r)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("api arrivals changed when web added: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].At != want[i].At {
			t.Fatalf("api arrival %d shifted: %v vs %v", i, got[i].At, want[i].At)
		}
	}
}

func TestArrivalsFlashDensity(t *testing.T) {
	w, err := ParseWorkload("api:rate=20;flash@2s:x=10,for=1s")
	if err != nil {
		t.Fatal(err)
	}
	arr := w.Arrivals(99, 5*time.Second)
	inFlash, outFlash := 0, 0
	for _, r := range arr {
		if r.At >= 2*time.Second && r.At < 3*time.Second {
			inFlash++
		} else {
			outFlash++
		}
	}
	// Flash second offers 200 expected arrivals vs 80 for the other four
	// seconds combined; even a 5-sigma fluctuation keeps inFlash ahead.
	if inFlash <= outFlash {
		t.Errorf("flash window not denser: %d in vs %d out", inFlash, outFlash)
	}
}

func TestPoissonTimesDegenerate(t *testing.T) {
	w, _ := ParseWorkload("idle:rate=0")
	if arr := w.Arrivals(1, time.Second); len(arr) != 0 {
		t.Errorf("zero-rate tenant drew %d arrivals", len(arr))
	}
	w2, _ := ParseWorkload("api:rate=100")
	if arr := w2.Arrivals(1, 0); len(arr) != 0 {
		t.Errorf("zero window drew %d arrivals", len(arr))
	}
}

func TestPriorityRoundTrip(t *testing.T) {
	for _, p := range []Priority{PrioLow, PrioNormal, PrioHigh} {
		got, err := parsePriority(p.String())
		if err != nil || got != p {
			t.Errorf("parsePriority(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := parsePriority("urgent"); err == nil {
		t.Error("parsePriority accepted unknown class")
	}
}
