// Package guest models the microVM's interior: the trimmed guest kernel's
// boot, the VF (NIC) driver's two-step initialization into a Linux network
// interface (§3.2.4), and the secure-container agent that configures MAC/IP
// addresses and gates application execution on network readiness.
package guest

import (
	"time"

	"fastiov/internal/hypervisor"
	"fastiov/internal/nic"
	"fastiov/internal/sim"
)

// Costs is the guest-side cost model.
type Costs struct {
	// KernelBoot is the guest kernel's CPU time from firmware entry to
	// agent start.
	KernelBoot time.Duration
	// BootTouchBase and BootTouchFrac size the guest RAM written during
	// boot as base + frac*RAM: a fixed kernel working set (code, slab,
	// initial page cache) plus per-byte metadata (struct page, page
	// tables). These are the pages whose lazy zeroing cost moves into the
	// boot path under FastIOV's decoupled zeroing.
	BootTouchBase int64
	BootTouchFrac float64
	// PCIEnum is the CPU cost of enumerating the passthrough device.
	PCIEnum time.Duration
	// DriverProbe is the VF driver's CPU work registering the netdev.
	DriverProbe time.Duration
	// IrqSetupHold is how long MSI-X/irqfd setup holds the host-global
	// interrupt-routing lock — the serialization that makes interface
	// readiness "a few hundred milliseconds up to seconds" at high
	// concurrency (§3.2.4).
	IrqSetupHold time.Duration
	// AgentNetConfig is the agent's MAC/IP assignment work.
	AgentNetConfig time.Duration
	// AgentPollInterval is the period of the agent/runtime readiness
	// polling loop; interface availability is only observed at poll
	// boundaries, adding a uniform detection delay.
	AgentPollInterval time.Duration
	// ContainerCreate is the CPU work of creating the container process
	// once its image is in the guest.
	ContainerCreate time.Duration
}

// DefaultCosts mirrors the calibration in DESIGN.md.
func DefaultCosts() Costs {
	return Costs{
		KernelBoot:        200 * time.Millisecond,
		BootTouchBase:     96 << 20,
		BootTouchFrac:     0.02,
		PCIEnum:           5 * time.Millisecond,
		DriverProbe:       12 * time.Millisecond,
		IrqSetupHold:      48 * time.Millisecond,
		AgentNetConfig:    8 * time.Millisecond,
		AgentPollInterval: 600 * time.Millisecond,
		ContainerCreate:   30 * time.Millisecond,
	}
}

// Guest is one microVM interior.
type Guest struct {
	MVM   *hypervisor.MicroVM
	VF    *nic.VF // nil without SR-IOV
	Costs Costs

	// irqLock is the host-global interrupt-routing lock shared by every
	// guest on the host.
	irqLock *sim.Mutex

	booted     *sim.Event
	ifaceReady *sim.Event
}

// New creates the guest state. irqLock is host-global and shared.
func New(mvm *hypervisor.MicroVM, vf *nic.VF, irqLock *sim.Mutex, costs Costs) *Guest {
	k := mvm.Env.K
	return &Guest{
		MVM:        mvm,
		VF:         vf,
		Costs:      costs,
		irqLock:    irqLock,
		booted:     sim.NewEvent(k, "guest-booted"),
		ifaceReady: sim.NewEvent(k, "iface-ready"),
	}
}

// Boot runs the guest kernel from firmware entry to agent readiness:
// executes kernel code (reading the firmware region), then initializes
// kernel data structures, writing BootTouchFrac of RAM. Under lazy zeroing
// these first touches carry the deferred zeroing cost.
func (g *Guest) Boot(p *sim.Proc) error {
	l := g.MVM.Layout
	// Execute kernel code: read the hypervisor-loaded firmware.
	if err := g.MVM.VM.TouchRange(p, l.FirmwareBase(), l.FirmwareBytes, false); err != nil {
		return err
	}
	g.MVM.Env.CPU.Use(p, 1, g.Costs.KernelBoot)
	// Kernel writes its working set across RAM.
	touch := g.Costs.BootTouchBase + int64(float64(l.RAMBytes)*g.Costs.BootTouchFrac)
	if touch > l.RAMBytes {
		touch = l.RAMBytes
	}
	if err := g.MVM.VM.TouchRange(p, l.RAMBase(), touch, true); err != nil {
		return err
	}
	// Mount the root filesystem: read a slice of the image region.
	if err := g.MVM.VM.TouchRange(p, l.ImageBase(), l.ImageBytes/8, false); err != nil {
		return err
	}
	g.booted.Fire(p)
	return nil
}

// Booted returns the boot-completion event.
func (g *Guest) Booted() *sim.Event { return g.booted }

// InitVFDriver performs the two-step interface initialization (§3.2.4):
// (1) the VF driver enumerates the PCI device, registers the netdev (MSI-X
// setup under the host irq-routing lock), and raises the link; (2) the
// agent assigns MAC and IP. Fires the interface-ready event when done.
func (g *Guest) InitVFDriver(p *sim.Proc) {
	if g.VF == nil {
		g.ifaceReady.Fire(p)
		return
	}
	g.booted.Await(p)
	env := g.MVM.Env
	env.CPU.Use(p, 1, g.Costs.PCIEnum)
	env.CPU.Use(p, 1, g.Costs.DriverProbe)
	// MSI-X vectors and irqfd routes are installed through the host's
	// global interrupt-routing state.
	g.irqLock.Lock(p)
	p.Sleep(g.Costs.IrqSetupHold)
	g.irqLock.Unlock(p)
	g.VF.LinkUp = true
	env.CPU.Use(p, 1, g.Costs.AgentNetConfig)
	g.ifaceReady.Fire(p)
}

// IfaceReady returns the network-readiness event the agent polls.
func (g *Guest) IfaceReady() *sim.Event { return g.ifaceReady }

// WaitIfaceReady blocks until the interface is available, plus the
// detection delay of the periodic readiness polling loop (§4.2.2: the
// agent "periodically check[s] the status of the network interface").
func (g *Guest) WaitIfaceReady(p *sim.Proc) {
	g.ifaceReady.Await(p)
	if g.VF != nil && g.Costs.AgentPollInterval > 0 {
		p.Sleep(g.MVM.Env.K.Rand().Duration(g.Costs.AgentPollInterval))
	}
}

// LaunchApp transfers the container image into the guest over virtioFS and
// creates the container process. proactive selects FastIOV's modified
// virtio frontend (required for correctness under lazy zeroing).
func (g *Guest) LaunchApp(p *sim.Proc, imageBytes int64, proactive bool) error {
	g.booted.Await(p)
	if imageBytes > 0 {
		if err := g.MVM.VirtioFSRead(p, imageBytes, proactive); err != nil {
			return err
		}
	}
	g.MVM.Env.CPU.Use(p, 1, g.Costs.ContainerCreate)
	return nil
}
