package guest

import (
	"testing"
	"time"

	"fastiov/internal/fastiovd"
	"fastiov/internal/hostmem"
	"fastiov/internal/hypervisor"
	"fastiov/internal/iommu"
	"fastiov/internal/kvm"
	"fastiov/internal/nic"
	"fastiov/internal/pci"
	"fastiov/internal/sim"
	"fastiov/internal/vfio"
)

type rig struct {
	k       *sim.Kernel
	mem     *hostmem.Allocator
	env     *hypervisor.Env
	card    *nic.NIC
	vd      *vfio.Device
	irqLock *sim.Mutex
	lazy    *fastiovd.Module
}

func newRig(t *testing.T, lazy bool) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	memCfg := hostmem.DefaultConfig()
	memCfg.TotalBytes = 4 << 30
	mem := hostmem.New(k, memCfg)
	topo := pci.NewTopology()
	card := nic.New(k, topo, nic.DefaultConfig())
	if err := card.CreateVFs(nil, 2, topo); err != nil {
		t.Fatal(err)
	}
	drv := vfio.New(k, topo, mem, iommu.New(k, mem.PageSize()), vfio.LockParentChild, vfio.DefaultCosts())
	kv := kvm.New(k, mem)
	var mod *fastiovd.Module
	if lazy {
		mod = fastiovd.New(k, mem)
		kv.Hook = mod.OnEPTFault
	}
	env := hypervisor.NewEnv(k, mem, kv, drv, mod, sim.NewResource("cpu", 8))
	vf := card.VFs()[0]
	vf.Dev.BindBoot("vfio-pci")
	vd, err := drv.Register(vf.Dev)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, mem: mem, env: env, card: card, vd: vd, irqLock: sim.NewMutex("irq"), lazy: mod}
}

func layout() hypervisor.Layout {
	return hypervisor.Layout{RAMBytes: 64 << 20, ImageBytes: 32 << 20, FirmwareBytes: 8 << 20}
}

// startVM builds and attaches a microVM ready for guest work.
func (r *rig) startVM(t *testing.T, p *sim.Proc) *hypervisor.MicroVM {
	t.Helper()
	mvm := hypervisor.New(r.env, 0, layout(), nil)
	mvm.Start(p)
	if err := mvm.AttachVF(p, r.vd, true); err != nil {
		t.Fatal(err)
	}
	if err := mvm.LoadFirmware(p); err != nil {
		t.Fatal(err)
	}
	return mvm
}

func TestBootFiresEventAndTouchesMemory(t *testing.T) {
	r := newRig(t, false)
	r.k.Go("t", func(p *sim.Proc) {
		mvm := r.startVM(t, p)
		vf, _ := r.card.AllocVF()
		g := New(mvm, vf, r.irqLock, DefaultCosts())
		if g.Booted().Fired() {
			t.Error("booted before Boot")
		}
		if err := g.Boot(p); err != nil {
			t.Fatal(err)
		}
		if !g.Booted().Fired() {
			t.Error("boot event not fired")
		}
		if mvm.VM.EPTEntries() == 0 {
			t.Error("boot touched no memory")
		}
	})
	r.k.Run()
	if r.mem.Violations != 0 {
		t.Errorf("violations = %d", r.mem.Violations)
	}
}

func TestDriverInitRaisesLinkAndFiresReady(t *testing.T) {
	r := newRig(t, false)
	r.k.Go("t", func(p *sim.Proc) {
		mvm := r.startVM(t, p)
		vf, _ := r.card.AllocVF()
		g := New(mvm, vf, r.irqLock, DefaultCosts())
		g.Boot(p)
		g.InitVFDriver(p)
		if !vf.LinkUp {
			t.Error("link not up after driver init")
		}
		if !g.IfaceReady().Fired() {
			t.Error("iface-ready not fired")
		}
	})
	r.k.Run()
}

func TestDriverInitWaitsForBoot(t *testing.T) {
	r := newRig(t, false)
	var bootDone, initDone sim.Duration
	r.k.Go("t", func(p *sim.Proc) {
		mvm := r.startVM(t, p)
		vf, _ := r.card.AllocVF()
		g := New(mvm, vf, r.irqLock, DefaultCosts())
		r.k.Go("init", func(q *sim.Proc) {
			g.InitVFDriver(q)
			initDone = q.Now()
		})
		p.Sleep(50 * time.Millisecond)
		g.Boot(p)
		bootDone = p.Now()
	})
	r.k.Run()
	if initDone <= bootDone {
		t.Errorf("driver init finished at %v, before/at boot completion %v", initDone, bootDone)
	}
}

func TestNoVFFiresReadyImmediately(t *testing.T) {
	r := newRig(t, false)
	r.k.Go("t", func(p *sim.Proc) {
		mvm := hypervisor.New(r.env, 0, layout(), nil)
		mvm.Start(p)
		if err := mvm.SetupMemoryDemand(p); err != nil {
			t.Fatal(err)
		}
		g := New(mvm, nil, r.irqLock, DefaultCosts())
		start := p.Now()
		g.InitVFDriver(p)
		if p.Now() != start {
			t.Error("no-VF init should be free")
		}
		if !g.IfaceReady().Fired() {
			t.Error("ready not fired")
		}
		g.WaitIfaceReady(p) // poll delay only applies with a VF
		if p.Now() != start {
			t.Error("no-VF wait should not add poll delay")
		}
	})
	r.k.Run()
}

func TestWaitIfaceReadyAddsPollDelay(t *testing.T) {
	r := newRig(t, false)
	r.k.Go("t", func(p *sim.Proc) {
		mvm := r.startVM(t, p)
		vf, _ := r.card.AllocVF()
		costs := DefaultCosts()
		costs.AgentPollInterval = 100 * time.Millisecond
		g := New(mvm, vf, r.irqLock, costs)
		g.Boot(p)
		g.InitVFDriver(p)
		before := p.Now()
		g.WaitIfaceReady(p)
		delay := p.Now() - before
		if delay < 0 || delay >= 100*time.Millisecond {
			t.Errorf("poll delay %v outside [0, 100ms)", delay)
		}
	})
	r.k.Run()
}

func TestIrqLockSerializesDriverInits(t *testing.T) {
	// Two guests initialize their VF drivers simultaneously: the host
	// irq-routing lock forces the second's MSI-X setup to wait — the
	// §3.2.4 contention FastIOV masks with asynchrony.
	r := newRig(t, false)
	costs := DefaultCosts()
	costs.AgentPollInterval = 0
	var ends []sim.Duration
	for i := 0; i < 2; i++ {
		i := i
		r.k.Go("vm", func(p *sim.Proc) {
			mvm := hypervisor.New(r.env, i, layout(), nil)
			mvm.Start(p)
			if err := mvm.SetupMemoryDemand(p); err != nil {
				t.Error(err)
				return
			}
			g := New(mvm, r.card.VFs()[i], r.irqLock, costs)
			if err := g.Boot(p); err != nil {
				t.Error(err)
				return
			}
			g.InitVFDriver(p)
			ends = append(ends, p.Now())
		})
	}
	r.k.Run()
	if len(ends) != 2 {
		t.Fatalf("%d inits completed", len(ends))
	}
	gap := ends[1] - ends[0]
	if gap < 0 {
		gap = -gap
	}
	if gap < costs.IrqSetupHold {
		t.Errorf("irq setups overlapped: completion gap %v < hold %v", gap, costs.IrqSetupHold)
	}
}

func TestLaunchAppTransfersImage(t *testing.T) {
	r := newRig(t, true)
	r.k.Go("t", func(p *sim.Proc) {
		mvm := r.startVM(t, p)
		vf, _ := r.card.AllocVF()
		g := New(mvm, vf, r.irqLock, DefaultCosts())
		g.Boot(p)
		if err := g.LaunchApp(p, 32<<20, true); err != nil {
			t.Fatal(err)
		}
	})
	r.k.Run()
	if r.lazy.Corruptions != 0 {
		t.Errorf("corruptions = %d", r.lazy.Corruptions)
	}
	if r.mem.Violations != 0 {
		t.Errorf("violations = %d", r.mem.Violations)
	}
}

func TestLaunchAppZeroImageBytes(t *testing.T) {
	r := newRig(t, false)
	r.k.Go("t", func(p *sim.Proc) {
		mvm := r.startVM(t, p)
		g := New(mvm, nil, r.irqLock, DefaultCosts())
		g.Boot(p)
		if err := g.LaunchApp(p, 0, false); err != nil {
			t.Fatal(err)
		}
	})
	r.k.Run()
}
