package cluster

import (
	"testing"
	"time"

	"fastiov/internal/fault"
	"fastiov/internal/sim"
	"fastiov/internal/telemetry"
)

// testFaultPlan mirrors the chaos experiment's plan shape: probabilistic
// failures across the classic sites plus latency inflation.
func testFaultPlan(p float64) *fault.Plan {
	pl := fault.NewPlan()
	pl.Set(fault.SiteVFIOReset, fault.Rule{Prob: p})
	pl.Set(fault.SiteDMAMap, fault.Rule{Prob: p / 2})
	pl.Set(fault.SiteCNIAdd, fault.Rule{Prob: p / 2})
	pl.Set(fault.SiteScrubber, fault.Rule{Prob: p, Latency: 2})
	pl.Set(fault.SiteMemBW, fault.Rule{Latency: 1 + p})
	return pl
}

func mustRun(t *testing.T, name string, n int) *Result {
	t.Helper()
	res, err := RunBaseline(name, n)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.Totals.N() != n {
		t.Fatalf("%s: %d containers completed, want %d", name, res.Totals.N(), n)
	}
	return res
}

func TestNoNetStartupCompletes(t *testing.T) {
	res := mustRun(t, BaselineNoNet, 10)
	if mean := res.Totals.Mean(); mean <= 0 || mean > 5*time.Second {
		t.Errorf("no-net mean = %v, want sub-second-ish", mean)
	}
	if res.VFRelated.Max() != 0 {
		t.Error("no-net run recorded VF-related time")
	}
}

func TestVanillaSlowerThanNoNet(t *testing.T) {
	von := mustRun(t, BaselineVanilla, 50)
	non := mustRun(t, BaselineNoNet, 50)
	if von.Totals.Mean() <= non.Totals.Mean() {
		t.Errorf("vanilla (%v) should be slower than no-net (%v)",
			von.Totals.Mean(), non.Totals.Mean())
	}
}

func TestFastIOVFasterThanVanilla(t *testing.T) {
	van := mustRun(t, BaselineVanilla, 50)
	fio := mustRun(t, BaselineFastIOV, 50)
	if fio.Totals.Mean() >= van.Totals.Mean() {
		t.Errorf("fastiov (%v) should beat vanilla (%v)",
			fio.Totals.Mean(), van.Totals.Mean())
	}
	if fio.VFRelated.Mean() >= van.VFRelated.Mean() {
		t.Errorf("fastiov VF time (%v) should beat vanilla (%v)",
			fio.VFRelated.Mean(), van.VFRelated.Mean())
	}
}

func TestAblationVariantsBetweenVanillaAndFastIOV(t *testing.T) {
	van := mustRun(t, BaselineVanilla, 50).Totals.Mean()
	fio := mustRun(t, BaselineFastIOV, 50).Totals.Mean()
	for _, name := range []string{BaselineFastIOVL, BaselineFastIOVA, BaselineFastIOVS, BaselineFastIOVD} {
		v := mustRun(t, name, 50).Totals.Mean()
		if v < fio {
			t.Errorf("%s (%v) beat full FastIOV (%v): removing an optimization should not help", name, v, fio)
		}
		if v > van {
			t.Errorf("%s (%v) slower than vanilla (%v)", name, v, van)
		}
	}
}

func TestPreZeroingOrdering(t *testing.T) {
	van := mustRun(t, BaselineVanilla, 50).Totals.Mean()
	p10 := mustRun(t, BaselinePre10, 50).Totals.Mean()
	p100 := mustRun(t, BaselinePre100, 50).Totals.Mean()
	fio := mustRun(t, BaselineFastIOV, 50).Totals.Mean()
	if !(p100 <= p10 && p10 <= van) {
		t.Errorf("pre-zeroing not monotone: van=%v p10=%v p100=%v", van, p10, p100)
	}
	if fio >= p100 {
		t.Errorf("fastiov (%v) should beat pre100 (%v): pre-zeroing does not fix the devset lock", fio, p100)
	}
}

func TestIPvtapBetweenFastIOVAndVanilla(t *testing.T) {
	van := mustRun(t, BaselineVanilla, 50).Totals.Mean()
	ipv := mustRun(t, BaselineIPvtap, 50).Totals.Mean()
	fio := mustRun(t, BaselineFastIOV, 50).Totals.Mean()
	if ipv >= van {
		t.Errorf("ipvtap (%v) should beat vanilla SR-IOV (%v)", ipv, van)
	}
	if fio >= ipv {
		t.Errorf("fastiov (%v) should beat ipvtap (%v)", fio, ipv)
	}
}

func TestRebindFlawWorse(t *testing.T) {
	fixed := mustRun(t, BaselineVanilla, 30).Totals.Mean()
	rebind := mustRun(t, BaselineRebind, 30).Totals.Mean()
	if rebind <= fixed {
		t.Errorf("rebinding CNI (%v) should be slower than fixed (%v)", rebind, fixed)
	}
}

func TestNoSecurityViolationsAnyBaseline(t *testing.T) {
	for _, name := range Baselines() {
		opts, err := OptionsFor(name)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHost(DefaultHostSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		res := h.StartupExperiment(30)
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		if h.Mem.Violations != 0 {
			t.Errorf("%s: %d residual-data exposures", name, h.Mem.Violations)
		}
		if h.Lazy != nil && h.Lazy.Corruptions != 0 {
			t.Errorf("%s: %d lazy-zeroing corruptions", name, h.Lazy.Corruptions)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := mustRun(t, BaselineVanilla, 25)
	b := mustRun(t, BaselineVanilla, 25)
	va, vb := a.Totals.Values(), b.Totals.Values()
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("runs diverge at container %d: %v vs %v", i, va[i], vb[i])
		}
	}
}

func TestVFRelatedShareGrowsWithConcurrency(t *testing.T) {
	small := mustRun(t, BaselineVanilla, 10)
	large := mustRun(t, BaselineVanilla, 100)
	shareSmall := float64(small.VFRelated.Mean()) / float64(small.Totals.Mean())
	shareLarge := float64(large.VFRelated.Mean()) / float64(large.Totals.Mean())
	if shareLarge <= shareSmall {
		t.Errorf("VF-related share should grow with concurrency: %.2f @10 vs %.2f @100",
			shareSmall, shareLarge)
	}
}

func TestVFIOStageDominatesVanilla(t *testing.T) {
	res := mustRun(t, BaselineVanilla, 100)
	rows := res.Recorder.Breakdown([]telemetry.Stage{
		telemetry.StageCgroup, telemetry.StageDMARAM, telemetry.StageVirtioFS,
		telemetry.StageDMAImage, telemetry.StageVFIODev, telemetry.StageVFDriver,
	})
	var vfioProp, maxOther float64
	for _, r := range rows {
		if r.Stage == telemetry.StageVFIODev {
			vfioProp = r.PropAvg
		} else if r.PropAvg > maxOther {
			maxOther = r.PropAvg
		}
	}
	if vfioProp <= maxOther {
		t.Errorf("4-vfio-dev (%.1f%%) should dominate all other stages (max %.1f%%)", vfioProp, maxOther)
	}
}

func TestTeardownReleasesResources(t *testing.T) {
	opts, _ := OptionsFor(BaselineFastIOV)
	h, err := NewHost(DefaultHostSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	freeVFs := h.NIC.FreeVFs()
	freePages := h.Mem.FreePages()
	res := h.StartupExperiment(20)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	h.K.Go("teardown", func(p *sim.Proc) {
		for _, sb := range res.Live() {
			if err := h.Eng.StopPodSandbox(p, sb); err != nil {
				t.Errorf("stop: %v", err)
			}
		}
	})
	h.K.Run()
	if h.NIC.FreeVFs() != freeVFs {
		t.Errorf("VFs leaked: %d free, want %d", h.NIC.FreeVFs(), freeVFs)
	}
	if h.Mem.FreePages() != freePages {
		t.Errorf("pages leaked: %d free, want %d", h.Mem.FreePages(), freePages)
	}
}

func TestUnknownBaselineRejected(t *testing.T) {
	if _, err := OptionsFor("nonsense"); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestVFExhaustion(t *testing.T) {
	opts, _ := OptionsFor(BaselineVanilla)
	spec := DefaultHostSpec()
	spec.NumVFs = 4
	h, err := NewHost(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := h.StartupExperiment(8)
	if res.Err == nil {
		t.Error("starting 8 containers with 4 VFs should fail")
	}
}

func TestStartupErrorsAggregated(t *testing.T) {
	// 8 containers racing for 4 VFs: every loser must surface in Result.Err,
	// not just the first — a concurrent wave can take several genuine
	// failures and dropping all but one hides real damage.
	opts, _ := OptionsFor(BaselineVanilla)
	spec := DefaultHostSpec()
	spec.NumVFs = 4
	h, err := NewHost(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := h.StartupExperiment(8)
	if res.Err == nil {
		t.Fatal("8 containers on 4 VFs succeeded")
	}
	joined, ok := res.Err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("Result.Err is not an aggregate: %v", res.Err)
	}
	if got := len(joined.Unwrap()); got != 4 {
		t.Errorf("aggregated %d errors, want 4 (one per VF-starved container): %v", got, res.Err)
	}
	if got := len(res.Live()); got != 4 {
		t.Errorf("Live() = %d sandboxes, want 4", got)
	}
	if len(res.Sandboxes) != 8 {
		t.Errorf("Sandboxes = %d entries, want 8 (index-aligned, nil for failures)", len(res.Sandboxes))
	}
}

func TestAuditPopulatesLeaksAndStaysClean(t *testing.T) {
	opts, _ := OptionsFor(BaselineFastIOV)
	opts.Audit = true
	h, err := NewHost(DefaultHostSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := h.StartupExperiment(20)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Leaks == nil {
		t.Fatal("audited run has nil Leaks")
	}
	if !res.Leaks.Clean() {
		t.Errorf("audited fault-free run is dirty:\n%s", res.Leaks)
	}
	// Unaudited runs must not populate (or tear down) anything.
	opts.Audit = false
	h2, err := NewHost(DefaultHostSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res2 := h2.StartupExperiment(20)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if res2.Leaks != nil {
		t.Error("unaudited run populated Leaks")
	}
	if res2.Leaks.Clean() {
		t.Error("nil leak report claims to be clean")
	}
}

// TestHostConservationUnderCrashChurn is the host-level alloc/free
// conservation property: churn waves under every combination of fault plan
// and crash point must end with a byte-clean audit against the boot
// baseline — the transaction either commits or compensates fully.
func TestHostConservationUnderCrashChurn(t *testing.T) {
	type tc struct {
		name  string
		base  string
		waves int
		n     int
		plan  func() *fault.Plan
	}
	crashAt := func(stages ...fault.CrashStage) func() *fault.Plan {
		return func() *fault.Plan {
			pl := testFaultPlan(0.05)
			for _, st := range stages {
				pl.Set(fault.CrashSite(st), fault.Rule{Prob: 0.25})
			}
			return pl
		}
	}
	cases := []tc{
		{"fault-free", BaselineFastIOV, 2, 10, fault.NewPlan},
		{"faults-only", BaselineFastIOV, 2, 10, func() *fault.Plan { return testFaultPlan(0.15) }},
		{"crash-every-stage", BaselineFastIOV, 3, 10, crashAt(fault.CrashStages()...)},
		{"crash-dma-rebind", BaselineRebind, 2, 8, crashAt(fault.CrashDMA)},
		{"crash-boot-rebind", BaselineRebind, 2, 8, crashAt(fault.CrashBoot)},
		{"crash-vhost-vanilla", BaselineVanilla, 2, 10, crashAt(fault.CrashVhost)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 7} {
				opts, err := OptionsFor(c.base)
				if err != nil {
					t.Fatal(err)
				}
				opts.Seed = seed
				opts.Faults = c.plan()
				h, err := NewHost(DefaultHostSpec(), opts)
				if err != nil {
					t.Fatal(err)
				}
				res := h.ChurnExperiment(c.waves, c.n)
				if res.Err != nil {
					t.Fatalf("seed %d: %v", seed, res.Err)
				}
				if !res.Leaks.Clean() {
					t.Errorf("seed %d: dirty audit after churn:\n%s", seed, res.Leaks)
				}
				if res.Started != c.waves*c.n {
					t.Errorf("seed %d: started %d, want %d", seed, res.Started, c.waves*c.n)
				}
				if res.Failed > 0 && res.Rollbacks == 0 {
					t.Errorf("seed %d: %d failures but no recorded rollbacks", seed, res.Failed)
				}
				if res.Reclaim.N() != res.Started-res.Failed {
					t.Errorf("seed %d: %d reclaim samples, want %d survivors",
						seed, res.Reclaim.N(), res.Started-res.Failed)
				}
			}
		})
	}
}

func TestArrivalProcesses(t *testing.T) {
	rng := sim.NewRand(3)
	burst := Arrival{Kind: ArrivalBurst}.Times(rng, 100, 50*time.Millisecond)
	for _, at := range burst {
		if at < 0 || at >= 50*time.Millisecond {
			t.Fatalf("burst arrival %v outside jitter window", at)
		}
	}
	pois := Arrival{Kind: ArrivalPoisson, RatePerSec: 100}.Times(rng, 100, 0)
	for i := 1; i < len(pois); i++ {
		if pois[i] < pois[i-1] {
			t.Fatal("poisson arrivals not monotone")
		}
	}
	// Mean inter-arrival should be ~10ms at 100/s; allow 3x slack.
	mean := pois[len(pois)-1] / time.Duration(len(pois))
	if mean < 3*time.Millisecond || mean > 30*time.Millisecond {
		t.Errorf("poisson mean gap %v, want ~10ms", mean)
	}
	uni := Arrival{Kind: ArrivalUniform, Window: 9 * time.Second}.Times(rng, 10, 0)
	if uni[0] != 0 || uni[9] != 9*time.Second {
		t.Errorf("uniform endpoints: %v .. %v", uni[0], uni[9])
	}
}

func TestPoissonArrivalExperiment(t *testing.T) {
	opts, _ := OptionsFor(BaselineVanilla)
	opts.Arrival = Arrival{Kind: ArrivalPoisson, RatePerSec: 20}
	h, err := NewHost(DefaultHostSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := h.StartupExperiment(30)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Totals.N() != 30 {
		t.Errorf("completed %d", res.Totals.N())
	}
}

func TestChurnRecyclesVFsAndMemory(t *testing.T) {
	// Serverless churn (§2.3: "VFs will be recycled when their assigned
	// containers terminate"): repeated start/stop waves must leave no
	// resource residue and keep working off the same VF pool.
	opts, _ := OptionsFor(BaselineFastIOV)
	spec := DefaultHostSpec()
	spec.NumVFs = 8 // fewer VFs than total launches: recycling is mandatory
	h, err := NewHost(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	freeVFs := h.NIC.FreeVFs()
	freePages := h.Mem.FreePages()
	for wave := 0; wave < 5; wave++ {
		res := h.StartupExperiment(8)
		if res.Err != nil {
			t.Fatalf("wave %d: %v", wave, res.Err)
		}
		h.K.Go("teardown", func(p *sim.Proc) {
			for _, sb := range res.Live() {
				if err := h.Eng.StopPodSandbox(p, sb); err != nil {
					t.Errorf("wave %d stop: %v", wave, err)
				}
			}
		})
		h.K.Run()
		if h.NIC.FreeVFs() != freeVFs {
			t.Fatalf("wave %d leaked VFs: %d free, want %d", wave, h.NIC.FreeVFs(), freeVFs)
		}
		if h.Mem.FreePages() != freePages {
			t.Fatalf("wave %d leaked pages: %d free, want %d", wave, h.Mem.FreePages(), freePages)
		}
	}
	if h.Mem.Violations != 0 {
		t.Errorf("churn exposed %d residual pages across tenants", h.Mem.Violations)
	}
	if h.Lazy.Corruptions != 0 {
		t.Errorf("churn corrupted %d pages", h.Lazy.Corruptions)
	}
}

func TestChurnRezeroesRecycledMemory(t *testing.T) {
	// The recycling security property: a second wave reusing the first
	// wave's pages must never read its data, under lazy zeroing.
	opts, _ := OptionsFor(BaselineFastIOV)
	spec := DefaultHostSpec()
	spec.Memory.TotalBytes = 8 << 30 // force page reuse across waves
	h, err := NewHost(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for wave := 0; wave < 3; wave++ {
		res := h.StartupExperiment(6)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		h.K.Go("rw", func(p *sim.Proc) {
			for _, sb := range res.Live() {
				// Tenant reads its whole RAM, then writes "secrets".
				if err := sb.MVM.VM.TouchRange(p, 0, 512<<20, false); err != nil {
					t.Error(err)
					return
				}
				if err := sb.MVM.VM.TouchRange(p, 0, 512<<20, true); err != nil {
					t.Error(err)
					return
				}
			}
			for _, sb := range res.Live() {
				if err := h.Eng.StopPodSandbox(p, sb); err != nil {
					t.Error(err)
				}
			}
		})
		h.K.Run()
	}
	if h.Mem.Violations != 0 {
		t.Errorf("%d cross-tenant reads of residual data", h.Mem.Violations)
	}
}

func TestSeedSweepVarianceSmall(t *testing.T) {
	// Jitter only perturbs arrival offsets within 50 ms; per-seed means of
	// a 30-container vanilla run must agree within a few percent.
	sweep, err := SeedSweep(BaselineVanilla, 30, []uint64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.N() != 5 {
		t.Fatalf("n = %d", sweep.N())
	}
	spread := float64(sweep.Max()-sweep.Min()) / float64(sweep.Mean())
	if spread > 0.10 {
		t.Errorf("seed spread %.1f%% exceeds 10%%: %v", 100*spread, sweep.Values())
	}
}
