// Package cluster assembles complete simulated hosts — CPU pool, memory,
// PCI topology, NIC, VFIO, KVM, fastiovd, CNI plugin, container engine —
// and runs the concurrent-startup experiments of the paper's evaluation.
//
// A Host mirrors the paper's testbed (§3.1): two Xeon 6348 sockets
// (56 cores / 112 threads), 256 GB DDR4-3200, and a 25 GbE Intel E810 with
// 256 VFs. Baselines (§6.1) are expressed as Options combinations.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"time"

	"fastiov/internal/audit"
	"fastiov/internal/cni"
	"fastiov/internal/cri"
	"fastiov/internal/fastiovd"
	"fastiov/internal/fault"
	"fastiov/internal/guest"
	"fastiov/internal/hostmem"
	"fastiov/internal/hypervisor"
	"fastiov/internal/iommu"
	"fastiov/internal/kvm"
	"fastiov/internal/metrics"
	"fastiov/internal/nic"
	"fastiov/internal/pci"
	"fastiov/internal/sim"
	"fastiov/internal/stats"
	"fastiov/internal/telemetry"
	"fastiov/internal/trace"
	"fastiov/internal/vfio"
)

// NetworkMode selects the sandbox networking path.
type NetworkMode uint8

const (
	// NetNone starts sandboxes without networking (the No-Net baseline).
	NetNone NetworkMode = iota
	// NetSRIOV uses SR-IOV passthrough.
	NetSRIOV
	// NetIPvtap uses the software CNI baseline.
	NetIPvtap
)

// HostSpec sizes the simulated machine.
type HostSpec struct {
	Cores  int64
	Memory hostmem.Config
	NIC    nic.Config
	NumVFs int
}

// DefaultHostSpec mirrors the paper's testbed.
func DefaultHostSpec() HostSpec {
	return HostSpec{
		Cores:  112,
		Memory: hostmem.DefaultConfig(),
		NIC:    nic.DefaultConfig(),
		NumVFs: 256,
	}
}

// Options selects the networking mode, the four FastIOV optimization
// switches (§4), and baseline behaviours.
type Options struct {
	Name    string
	Network NetworkMode

	// Scope prefixes every sim-primitive name the host creates (zone lock,
	// membw resource, vfio devset/device locks, rtnl, cgroup, irq-routing,
	// cpu, the NIC link). Fleets booting many hosts into one shared kernel
	// give each host a unique scope (e.g. "h003-") so name-matching
	// observers — trace contention profiles, metrics resource and lock-queue
	// watchers — attribute events to the right host. The empty default keeps
	// every historical name, so single-host runs are byte-identical.
	Scope string

	// The four FastIOV optimizations (§6.1's ablation removes them one at
	// a time).
	LockDecomposition bool // L: parent-child devset locking
	AsyncVFInit       bool // A: asynchronous VF driver initialization
	SkipImageMap      bool // S: skip image-region DMA mapping
	LazyZeroing       bool // D: decoupled (lazy) zeroing via fastiovd

	// RebindFlaw enables the upstream SR-IOV CNI's per-start driver
	// rebinding (§5); all evaluation baselines have it fixed.
	RebindFlaw bool

	// VDPA routes the control plane through vhost-vdpa instead of VFIO
	// device open (§7's future-work direction).
	VDPA bool

	// DisableScrubber turns off fastiovd's background zeroing thread
	// (ablation: first touches then carry the whole deferred cost).
	DisableScrubber bool

	// PreZeroFraction pre-zeroes this fraction of free memory at boot
	// (the HawkEye-style Pre10/Pre50/Pre100 baselines).
	PreZeroFraction float64

	// Layout is the per-container guest memory geometry.
	Layout hypervisor.Layout

	// Seed drives start-time jitter.
	Seed uint64
	// StartJitter is the max random offset between container invocations
	// ("over 200 container invocation requests can arrive nearly
	// simultaneously", §1). Used by the default burst arrival process.
	StartJitter time.Duration
	// Arrival selects the invocation arrival process (default: burst).
	Arrival Arrival

	// Trace attaches an event-sourced tracer to the simulation kernel,
	// recording lock waits, holds, and wake-up causality (internal/trace).
	// Tracing never perturbs the simulation: virtual timings and rendered
	// results are byte-identical with it on or off.
	Trace bool

	// Metrics attaches the simulated-time metrics registry: every substrate
	// is instrumented and a sampler proc snapshots all instruments each
	// MetricsCadence of simulated time (internal/metrics). Like tracing,
	// metrics never perturb the simulation: virtual timings and rendered
	// results are byte-identical with it on or off.
	Metrics bool
	// MetricsCadence overrides the sampling interval (<= 0 selects
	// metrics.DefaultCadence). It shapes only the sampled series, never the
	// simulation itself.
	MetricsCadence time.Duration

	// Faults attaches a deterministic fault-injection plan to every
	// substrate of the host. A nil or all-zero plan builds no injector and
	// leaves every code path byte-identical to a fault-free run.
	Faults *fault.Plan
	// Retry is the startup path's retry/backoff/timeout policy; the zero
	// value selects fault.DefaultPolicy. Only exercised when faults fire.
	Retry fault.Policy

	// Audit makes StartupExperiment stop every surviving sandbox after
	// measurement and diff the host's conservation counters against the
	// boot-time baseline, populating Result.Leaks. The teardown runs after
	// every telemetry mark and consumes no randomness, so measured results
	// are byte-identical with auditing on or off. Off by default because
	// callers that manage sandbox lifetimes themselves (serverless
	// completions, explicit StopPodSandbox tests) must not double-free.
	Audit bool
}

// ArrivalKind names an invocation arrival process.
type ArrivalKind uint8

const (
	// ArrivalBurst models the paper's production statistic: all requests
	// arrive nearly simultaneously, within StartJitter.
	ArrivalBurst ArrivalKind = iota
	// ArrivalPoisson models a memoryless request stream at RatePerSec.
	ArrivalPoisson
	// ArrivalUniform spreads requests evenly over Window.
	ArrivalUniform
)

// Arrival parameterizes the invocation arrival process.
type Arrival struct {
	Kind       ArrivalKind
	RatePerSec float64       // Poisson intensity
	Window     time.Duration // uniform spread
}

// Times generates n arrival offsets under the configured process, drawing
// from the given PRNG stream (exported for the fleet layer, which drives
// its own arrival process over a shared kernel).
func (a Arrival) Times(rng *sim.Rand, n int, jitter time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	switch a.Kind {
	case ArrivalPoisson:
		rate := a.RatePerSec
		if rate <= 0 {
			rate = 100
		}
		t := 0.0
		for i := 0; i < n; i++ {
			// Exponential inter-arrival: -ln(U)/rate.
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			t += -math.Log(u) / rate
			out[i] = time.Duration(t * float64(time.Second))
		}
	case ArrivalUniform:
		w := a.Window
		if w <= 0 {
			w = 10 * time.Second
		}
		if n > 1 {
			for i := 0; i < n; i++ {
				out[i] = time.Duration(int64(w) * int64(i) / int64(n-1))
			}
		}
	default: // burst
		// Batched draws: identical stream positions to n sequential
		// rng.Duration calls, without per-call overhead.
		rng.Durations(out, jitter)
	}
	return out
}

// Baseline names, matching §6.1.
const (
	BaselineNoNet    = "no-net"
	BaselineVanilla  = "vanilla"
	BaselineRebind   = "vanilla-rebind"
	BaselineFastIOV  = "fastiov"
	BaselineFastIOVL = "fastiov-L"
	BaselineFastIOVA = "fastiov-A"
	BaselineFastIOVS = "fastiov-S"
	BaselineFastIOVD = "fastiov-D"
	BaselinePre10    = "pre10"
	BaselinePre50    = "pre50"
	BaselinePre100   = "pre100"
	BaselineIPvtap   = "ipvtap"
	// BaselineVDPA is not part of Fig. 11; it drives the §7 future-work
	// investigation (vanilla zeroing + vhost-vdpa control plane).
	BaselineVDPA = "vdpa"
)

// Baselines lists every configuration of Fig. 11 in presentation order.
func Baselines() []string {
	return []string{
		BaselineNoNet, BaselineVanilla,
		BaselineFastIOVL, BaselineFastIOVA, BaselineFastIOVS, BaselineFastIOVD,
		BaselinePre10, BaselinePre50, BaselinePre100,
		BaselineFastIOV,
	}
}

// OptionsFor returns the Options for a named baseline.
func OptionsFor(name string) (Options, error) {
	o := Options{
		Name:        name,
		Network:     NetSRIOV,
		Layout:      hypervisor.DefaultLayout(),
		Seed:        1,
		StartJitter: 50 * time.Millisecond,
	}
	all := func() {
		o.LockDecomposition = true
		o.AsyncVFInit = true
		o.SkipImageMap = true
		o.LazyZeroing = true
	}
	switch name {
	case BaselineNoNet:
		o.Network = NetNone
	case BaselineVanilla:
	case BaselineRebind:
		o.RebindFlaw = true
	case BaselineFastIOV:
		all()
	case BaselineFastIOVL:
		all()
		o.LockDecomposition = false
	case BaselineFastIOVA:
		all()
		o.AsyncVFInit = false
	case BaselineFastIOVS:
		all()
		o.SkipImageMap = false
	case BaselineFastIOVD:
		all()
		o.LazyZeroing = false
	case BaselinePre10:
		o.PreZeroFraction = 0.10
	case BaselinePre50:
		o.PreZeroFraction = 0.50
	case BaselinePre100:
		o.PreZeroFraction = 1.00
	case BaselineIPvtap:
		o.Network = NetIPvtap
	case BaselineVDPA:
		o.VDPA = true
	default:
		return Options{}, fmt.Errorf("cluster: unknown baseline %q", name)
	}
	return o, nil
}

// Host is one fully wired machine.
type Host struct {
	K    *sim.Kernel
	Spec HostSpec
	Opts Options

	// rng is the host's private PRNG stream (arrival jitter). A standalone
	// host uses its kernel's stream; fleet hosts sharing one kernel each
	// get a derived stream (sim.SplitSeed) so their draws never collide.
	rng *sim.Rand

	Mem  *hostmem.Allocator
	Topo *pci.Topology
	NIC  *nic.NIC
	MMU  *iommu.IOMMU
	VFIO *vfio.Driver
	KVM  *kvm.KVM
	Lazy *fastiovd.Module // nil unless LazyZeroing
	CPU  *sim.Resource
	Env  *hypervisor.Env
	Eng  *cri.Engine
	Rec  *telemetry.Recorder
	// Tracer records the kernel's probe stream (nil unless Opts.Trace).
	Tracer *trace.Trace
	// Metrics is the host's instrument registry (nil unless Opts.Metrics).
	// It is sealed at the end of the first measured wave.
	Metrics *metrics.Registry
	// Faults is the host-wide injector (nil when Opts.Faults is empty).
	Faults *fault.Injector

	// Baseline is the conservation-counter snapshot taken right after host
	// boot — the reference every leak audit diffs against.
	Baseline audit.Snapshot

	RTNL       *sim.Mutex
	CgroupLock *sim.Mutex
	IrqLock    *sim.Mutex

	// wave counts container lifecycle transitions for the cluster gauges;
	// pure bookkeeping, maintained whether or not metrics are attached.
	wave struct {
		inflight int
		started  int
		failed   int
	}
	// startupHist is the cluster_startup_seconds histogram (nil unless
	// metrics are attached).
	startupHist *metrics.Histogram
}

// auditSystem bundles the host's substrates for conservation snapshots.
func (h *Host) auditSystem() audit.System {
	return audit.System{
		NIC: h.NIC, Mem: h.Mem, MMU: h.MMU, VFIO: h.VFIO,
		KVM: h.KVM, Lazy: h.Lazy, Env: h.Env,
	}
}

// AuditSnapshot captures the host's current conservation counters.
func (h *Host) AuditSnapshot() audit.Snapshot { return audit.Capture(h.auditSystem()) }

// RecoveryCost models the readiness delay a freshly rebooted host pays
// before it can serve again, given lostTracked — the number of lazily
// tracked pages the dead generation's fastiovd lost. This is the paper's
// recovery asymmetry: a vanilla host cannot trust any VF left behind by
// the crashed generation and must reset and re-zero the whole pool
// serially (NumVFs function-level resets — the recovery-time cliff at 256
// VFs), while a FastIOV host reloads fastiovd, conservatively re-registers
// the lost scrub tracking (one bookkeeping insert per lost page), and
// pushes the pool re-zeroing off the readiness path onto the background
// scrubber — a near-flat curve in the VF count.
func (h *Host) RecoveryCost(lostTracked int) time.Duration {
	if h.Opts.LazyZeroing {
		reload := vfio.DefaultCosts().DeviceReset // module reload + one sanity FLR
		return reload + time.Duration(lostTracked)*h.Lazy.RegisterCostPerPage
	}
	return time.Duration(h.Spec.NumVFs) * vfio.DefaultCosts().DeviceReset
}

// NewHost boots a machine: creates the hardware, pre-creates the VFs, and
// binds them to the driver the configuration requires (vfio-pci once at
// boot for the fixed CNIs; unbound for the flawed rebinding CNI). The host
// owns a private kernel seeded from Options.Seed; to boot several hosts
// into one shared kernel use NewHostOn.
func NewHost(spec HostSpec, opts Options) (*Host, error) {
	k := sim.NewKernel(opts.Seed)
	return NewHostOn(k, k.Rand(), spec, opts)
}

// NewHostOn boots a machine onto an externally owned kernel and PRNG
// stream. This is the re-enterable constructor beneath NewHost: a fleet
// boots N hosts into one shared kernel, handing each a derived stream
// (sim.SplitSeed) and a unique Options.Scope so the hosts' events
// interleave deterministically without sharing or colliding PRNG state.
// When rng is the kernel's own stream and Scope is empty the boot is
// byte-identical to the historical single-host path.
func NewHostOn(k *sim.Kernel, rng *sim.Rand, spec HostSpec, opts Options) (*Host, error) {
	if opts.Scope != "" {
		// Scope the NIC too: its link resource (and the PCI device names
		// derived from the card name) must be host-unique under a shared
		// kernel for the same reason the locks are.
		spec.NIC.Name = opts.Scope + spec.NIC.Name
	}
	h := &Host{
		K:          k,
		Spec:       spec,
		Opts:       opts,
		rng:        rng,
		Mem:        hostmem.NewScoped(k, spec.Memory, opts.Scope),
		Topo:       pci.NewTopology(),
		CPU:        sim.NewResource(opts.Scope+"cpu", spec.Cores),
		Rec:        telemetry.NewRecorder(),
		RTNL:       sim.NewMutex(opts.Scope + "rtnl"),
		CgroupLock: sim.NewMutex(opts.Scope + "cgroup"),
		IrqLock:    sim.NewMutex(opts.Scope + "irq-routing"),
	}
	// The tracer attaches before any simulated work (including boot-time
	// VF binding) so the stream covers the full execution.
	if opts.Trace {
		h.Tracer = trace.Attach(k)
	}
	// Fault injection: one injector per host, derived from the run seed,
	// threaded into every substrate before any simulated work runs. Empty
	// plans yield a nil injector, which every consumer treats as free.
	h.Faults = fault.NewInjector(opts.Seed, opts.Faults)
	pol := opts.Retry
	if pol.MaxAttempts == 0 {
		pol = fault.DefaultPolicy()
	}
	h.Mem.Faults = h.Faults

	h.MMU = iommu.New(k, h.Mem.PageSize())
	h.MMU.Faults = h.Faults
	h.NIC = nic.New(k, h.Topo, spec.NIC)
	if err := h.NIC.CreateVFs(nil, spec.NumVFs, h.Topo); err != nil {
		return nil, err
	}
	mode := vfio.LockGlobal
	if opts.LockDecomposition {
		mode = vfio.LockParentChild
	}
	h.VFIO = vfio.New(k, h.Topo, h.Mem, h.MMU, mode, vfio.DefaultCosts())
	h.VFIO.Scope = opts.Scope
	h.VFIO.Faults = h.Faults
	h.VFIO.Retry = pol
	h.KVM = kvm.New(k, h.Mem)
	if opts.LazyZeroing {
		h.Lazy = fastiovd.New(k, h.Mem)
		h.Lazy.Faults = h.Faults
		h.KVM.Hook = h.Lazy.OnEPTFault
		if !opts.DisableScrubber {
			h.Lazy.StartScrubber(2*time.Millisecond, 8)
		}
	}
	if opts.PreZeroFraction > 0 {
		h.Mem.PreZero(opts.PreZeroFraction)
	}

	// Bind the pre-created VFs (§5): the fixed CNIs bind vfio-pci exactly
	// once at host boot; the flawed CNI leaves VFs unbound and rebinds on
	// every container start.
	if opts.Network == NetSRIOV && !opts.RebindFlaw {
		for _, vf := range h.NIC.VFs() {
			vf.Dev.BindBoot("vfio-pci")
			if _, err := h.VFIO.Register(vf.Dev); err != nil {
				return nil, err
			}
		}
	}

	if err := h.wireStack(pol); err != nil {
		return nil, err
	}
	return h, nil
}

// wireStack builds the software stack above the hardware substrates —
// hypervisor environment, CNI plugin, container engine, metrics — and
// takes the boot-baseline audit snapshot. It is shared by NewHostOn
// (hardware built fresh) and RestoreSnapshot (hardware cloned from a
// boot-prefix snapshot); the only kernel-visible action it performs is the
// metrics sampler daemon spawn, so both callers produce identical kernel
// clock/seq state and probe streams.
func (h *Host) wireStack(pol fault.Policy) error {
	opts := h.Opts
	h.Env = hypervisor.NewEnv(h.K, h.Mem, h.KVM, h.VFIO, h.Lazy, h.CPU)
	h.Env.Faults = h.Faults
	h.Env.Retry = pol

	var plugin cni.Plugin
	switch opts.Network {
	case NetNone:
		plugin = cni.NoNetwork{}
	case NetSRIOV:
		name := "sriov"
		if opts.RebindFlaw {
			name = "sriov-rebind"
		} else if opts.LockDecomposition && opts.LazyZeroing {
			name = "fastiov"
		}
		sriov := cni.NewSRIOV(name, h.NIC, h.VFIO, h.RTNL, cni.DefaultCosts(), opts.RebindFlaw)
		sriov.Faults = h.Faults
		plugin = sriov
	case NetIPvtap:
		ipvtap := cni.NewIPvtap(h.RTNL, h.CgroupLock, cni.DefaultCosts())
		ipvtap.Faults = h.Faults
		plugin = ipvtap
	default:
		return fmt.Errorf("cluster: unknown network mode %d", opts.Network)
	}

	gcosts := guest.DefaultCosts()
	if opts.VDPA {
		// The guest uses the standard virtio-net driver instead of the
		// vendor VF driver: a lighter probe, no vendor-specific setup.
		gcosts.DriverProbe = 4 * time.Millisecond
		gcosts.PCIEnum = 2 * time.Millisecond
	}
	h.Eng = cri.NewEngine(h.Env, plugin, h.Rec, h.CgroupLock, h.IrqLock, cri.DefaultCosts(), cri.Options{
		AsyncVFInit:  opts.AsyncVFInit,
		SkipImageMap: opts.SkipImageMap,
		VDPA:         opts.VDPA,
		Layout:       opts.Layout,
		GuestCosts:   gcosts,
		Faults:       h.Faults,
		Retry:        pol,
	})
	// Metrics attach last, once every substrate exists: instruments are
	// read-only closures over substrate state, the probe observer chains
	// behind any tracer, and the sampler daemon starts ticking at t=0.
	// None of this consumes simulated time or PRNG draws — a metrics-on
	// run stays byte-identical to a metrics-off run.
	if opts.Metrics {
		h.Metrics = metrics.New(opts.MetricsCadence)
		h.attachMetrics()
		h.K.ChainProbe(h.Metrics.Observer())
		h.Metrics.Start(h.K)
	}
	// The baseline is taken after boot-time VF binding and pre-zeroing so
	// it reflects the steady idle state every experiment must return to.
	h.Baseline = h.AuditSnapshot()
	return nil
}

// Result carries one experiment's outcome.
type Result struct {
	Name      string
	N         int
	Totals    *stats.Sample // end-to-end startup times
	VFRelated *stats.Sample // per-container VF-related stage time
	Recorder  *telemetry.Recorder
	Sandboxes []*cri.Sandbox
	// Trace is the recorded event stream (nil unless Options.Trace).
	Trace *trace.Trace
	// Metrics is the sealed instrument registry (nil unless
	// Options.Metrics): per-metric time series covering the measured wave,
	// ready for OpenMetrics/CSV/dashboard export.
	Metrics *metrics.Registry
	Err     error

	// Started counts launched containers; Failed counts those lost to
	// injected faults after the retry budget ran out (their unfinished
	// telemetry is excluded from Totals). Genuine errors still land in
	// Err; fault-induced failures deliberately do not, because a chaos run
	// measures them instead of aborting on them.
	Started int
	Failed  int
	// FaultStats is the injector's per-site counter snapshot (nil when the
	// host runs fault-free).
	FaultStats []fault.SiteStat

	// Leaks is the host-wide conservation audit (nil unless Options.Audit):
	// every surviving sandbox is stopped after measurement and the counters
	// diffed against the host's boot baseline. A clean report proves the
	// run — rollbacks included — returned every VF, page, IOMMU mapping,
	// and registration it took.
	Leaks *audit.Report
}

// Live returns the sandboxes that completed startup, filtering the nil
// slots failed containers leave behind in Sandboxes (which stays
// index-aligned with container ids).
func (r *Result) Live() []*cri.Sandbox {
	out := make([]*cri.Sandbox, 0, len(r.Sandboxes))
	for _, sb := range r.Sandboxes {
		if sb != nil {
			out = append(out, sb)
		}
	}
	return out
}

// SuccessRate returns the fraction of started containers that finished
// startup, in [0, 1]; a run with nothing started counts as 0.
func (r *Result) SuccessRate() float64 {
	return stats.SuccessRate(r.Started-r.Failed, r.Started)
}

// StartupExperiment concurrently starts n secure containers (crictl-style,
// no application inside, §3.1) and collects per-container timings. With
// Options.Audit set, every surviving sandbox is then stopped and the
// host's conservation counters diffed against the boot baseline into
// Result.Leaks; the teardown phase runs after all telemetry marks, so the
// measured results are unaffected.
func (h *Host) StartupExperiment(n int) *Result {
	res := h.startupWave(n, 0)
	if h.Opts.Audit {
		// Detach the probe before teardown: the recorded trace stream and
		// the sealed metrics registry (and hence their fingerprints) cover
		// exactly the measured startup phase, byte-identical to an
		// unaudited run.
		if h.Tracer != nil || h.Metrics != nil {
			h.K.SetProbe(nil)
		}
		if err := h.stopAll(res.Live(), nil); err != nil {
			res.Err = errors.Join(res.Err, err)
		}
		res.Leaks = audit.NewReport(h.Baseline, h.AuditSnapshot())
	}
	return res
}

// StartOne runs a single pod-sandbox start on the host from within an
// already-scheduled Proc, maintaining the wave bookkeeping the cluster
// gauges read (in-flight, started, failed, the startup histogram). It is
// the per-container unit beneath startupWave, exported so a fleet can
// place individual starts onto hosts sharing one kernel. Fault-classified
// failures (fault.IsFault) are counted and returned; the caller decides
// whether they abort the run.
func (h *Host) StartOne(p *sim.Proc, id int) (*cri.Sandbox, error) {
	h.wave.started++
	h.wave.inflight++
	// Deferred so the count stays consistent when the start is killed
	// mid-flight by a host crash (the kill unwind runs defers only).
	defer func() { h.wave.inflight-- }()
	began := p.Now()
	sb, err := h.Eng.RunPodSandbox(p, id)
	if err != nil {
		if fault.IsFault(err) {
			h.wave.failed++
		}
		return nil, err
	}
	if h.startupHist != nil {
		h.startupHist.Observe(time.Duration(p.Now() - began).Seconds())
	}
	return sb, nil
}

// StartupSpans returns the host recorder's telemetry stage spans for one
// container, in recording order. The journey recorder copies these into a
// request's trace eagerly at dispatch-completion time: a later host crash
// replaces the host (and its recorder) with a fresh generation, so a
// post-hoc read would lose pre-crash stages.
func (h *Host) StartupSpans(id int) []telemetry.Span {
	var out []telemetry.Span
	for _, sp := range h.Rec.Spans() {
		if sp.Container == id {
			out = append(out, sp)
		}
	}
	return out
}

// startupWave starts n containers with globally unique ids base..base+n-1
// (churn runs several waves on one host; ids must not collide across waves
// for telemetry and trace binding).
func (h *Host) startupWave(n, base int) *Result {
	res := &Result{Name: h.Opts.Name, N: n, Recorder: h.Rec, Started: n}
	sandboxes := make([]*cri.Sandbox, n)
	var errs []error
	arrivals := h.Opts.Arrival.Times(h.rng, n, h.Opts.StartJitter)
	for i := 0; i < n; i++ {
		i := i
		id := base + i
		at := h.K.Now() + arrivals[i]
		h.K.GoAt(at, fmt.Sprintf("ctr-%d", id), func(p *sim.Proc) {
			sb, err := h.StartOne(p, id)
			if err != nil {
				if fault.IsFault(err) {
					res.Failed++
				} else {
					// Aggregate every genuine error: a concurrent wave can
					// surface several and dropping all but the first hides
					// real damage.
					errs = append(errs, err)
				}
				return
			}
			sandboxes[i] = sb
		})
	}
	h.K.Run()
	if h.Metrics != nil {
		// Seal at quiesce: the series covers exactly the measured wave
		// (churn's later waves and any audit teardown stay unobserved).
		h.Metrics.Seal(h.K.Now())
		res.Metrics = h.Metrics
	}
	res.Err = errors.Join(errs...)
	res.Sandboxes = sandboxes
	res.Trace = h.Tracer
	res.Totals = h.Rec.Totals()
	res.VFRelated = stats.NewSample()
	for _, id := range h.Rec.Containers() {
		if h.Rec.Total(id) == 0 {
			continue // failed under injected faults; excluded like Totals
		}
		res.VFRelated.Add(h.Rec.VFRelatedTime(id))
	}
	res.FaultStats = h.Faults.Snapshot()
	return res
}

// stopAll tears the sandboxes down concurrently (one proc per sandbox) in
// a fresh kernel phase, invoking each (when non-nil) with every sandbox's
// reclaim latency. Teardown errors are aggregated, not fail-fast: the
// remaining sandboxes still come down.
func (h *Host) stopAll(sbs []*cri.Sandbox, each func(id int, took time.Duration)) error {
	if len(sbs) == 0 {
		return nil
	}
	var errs []error
	for _, sb := range sbs {
		sb := sb
		h.K.Go(fmt.Sprintf("stop-%d", sb.ID), func(p *sim.Proc) {
			start := p.Now()
			if err := h.Eng.StopPodSandbox(p, sb); err != nil {
				errs = append(errs, err)
			}
			if each != nil {
				each(sb.ID, p.Now()-start)
			}
		})
	}
	h.K.Run()
	return errors.Join(errs...)
}

// ChurnResult carries a churn experiment's outcome.
type ChurnResult struct {
	Name    string
	Waves   int
	PerWave int
	Started int
	Failed  int
	// Reclaim samples per-sandbox StopPodSandbox latency across all waves.
	Reclaim *stats.Sample
	// Rollback samples per-container compensating-rollback time (failed
	// containers only); Rollbacks counts them.
	Rollback  *stats.Sample
	Rollbacks int
	// Leaks audits the host after the final wave against the boot
	// baseline. A recycling host must end identically clean.
	Leaks      *audit.Report
	Err        error
	FaultStats []fault.SiteStat
}

// SuccessRate returns the fraction of started containers that finished
// startup, in [0, 1].
func (r *ChurnResult) SuccessRate() float64 {
	return stats.SuccessRate(r.Started-r.Failed, r.Started)
}

// ChurnExperiment runs waves of n concurrent starts, tearing every
// surviving sandbox down between waves — the serverless recycling loop of
// §2.3 ("VFs will be recycled when their assigned [containers] are
// destroyed"), typically under a fault- and crash-heavy plan. Each wave
// gets a fresh telemetry recorder (per-wave breakdowns stay separable) and
// globally unique container ids; after the final wave the host is audited
// against its boot baseline.
func (h *Host) ChurnExperiment(waves, n int) *ChurnResult {
	out := &ChurnResult{
		Name: h.Opts.Name, Waves: waves, PerWave: n,
		Reclaim: stats.NewSample(), Rollback: stats.NewSample(),
	}
	for w := 0; w < waves; w++ {
		rec := telemetry.NewRecorder()
		h.Rec = rec
		h.Eng.SetRecorder(rec)
		res := h.startupWave(n, w*n)
		out.Started += res.Started
		out.Failed += res.Failed
		if res.Err != nil {
			out.Err = errors.Join(out.Err, res.Err)
		}
		for _, sp := range rec.Spans() {
			if sp.Stage == telemetry.StageRollback {
				out.Rollback.Add(sp.Dur())
				out.Rollbacks++
			}
		}
		if err := h.stopAll(res.Live(), func(_ int, took time.Duration) {
			out.Reclaim.Add(took)
		}); err != nil {
			out.Err = errors.Join(out.Err, err)
		}
	}
	out.Leaks = audit.NewReport(h.Baseline, h.AuditSnapshot())
	out.FaultStats = h.Faults.Snapshot()
	return out
}

// RunBaseline is the one-call experiment: boot a default host with the
// named baseline and start n containers.
func RunBaseline(name string, n int) (*Result, error) {
	opts, err := OptionsFor(name)
	if err != nil {
		return nil, err
	}
	h, err := NewHost(DefaultHostSpec(), opts)
	if err != nil {
		return nil, err
	}
	res := h.StartupExperiment(n)
	if res.Err != nil {
		return nil, res.Err
	}
	return res, nil
}

// SeedSweep runs the named baseline at concurrency n once per seed and
// returns the per-seed mean startup times. Because each run is
// deterministic given its seed, the spread across seeds quantifies the
// sensitivity of a result to arrival jitter — the simulator's analog of
// run-to-run variance on real hardware.
func SeedSweep(name string, n int, seeds []uint64) (*stats.Sample, error) {
	opts, err := OptionsFor(name)
	if err != nil {
		return nil, err
	}
	out := stats.NewSample()
	for _, seed := range seeds {
		opts.Seed = seed
		h, err := NewHost(DefaultHostSpec(), opts)
		if err != nil {
			return nil, err
		}
		res := h.StartupExperiment(n)
		if res.Err != nil {
			return nil, res.Err
		}
		out.Add(res.Totals.Mean())
	}
	return out, nil
}
