// Host-wide metrics instrumentation: every substrate registers read-only
// gauges and counters with the simulated-time registry (internal/metrics).
// Instruments are closures over live substrate state — registration and
// sampling consume no simulated time and no PRNG draws, so metrics-enabled
// runs stay byte-identical to metrics-off runs.
package cluster

import (
	"fmt"

	"fastiov/internal/hostmem"
	"fastiov/internal/metrics"
	"fastiov/internal/telemetry"
	"fastiov/internal/vfio"
)

// Instrument ids shared with the saturation experiment and the conservation
// tests. Labelled instruments (free pages) derive their ids at registration.
const (
	MetricMembwInUse       = "hostmem_membw_streams_in_use"
	MetricMembwUtil        = "hostmem_membw_utilization_pct"
	MetricMembwBusy        = "hostmem_membw_busy_stream_seconds_total"
	MetricZeroedBytes      = "hostmem_zeroed_bytes_total"
	MetricDirtyPages       = "hostmem_dirty_pages"
	MetricPinnedPages      = "hostmem_pinned_pages"
	MetricDevsetQueueDepth = "vfio_devset_queue_depth"
	MetricDevsetQueuePeak  = "vfio_devset_queue_peak"
	MetricStartupsInflight = "cluster_startups_inflight"
)

// SaturationPanels lists the dashboard series the saturation experiment
// renders, common to every baseline (fastiovd-specific series are skipped
// on hosts without the module).
func SaturationPanels() []string {
	return []string{
		MetricDevsetQueueDepth,
		MetricMembwUtil,
		MetricDirtyPages,
		MetricStartupsInflight,
	}
}

// pageSizeLabel renders a page size the way operators name it.
func pageSizeLabel(bytes int64) string {
	switch bytes {
	case hostmem.PageSize4K:
		return "4K"
	case hostmem.PageSize2M:
		return "2M"
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}

// attachMetrics registers every host instrument with h.Metrics. The probe
// observer (devset queue depth, membw busy integral) is installed by the
// caller via sim.Kernel.ChainProbe.
func (h *Host) attachMetrics() {
	m := h.Metrics

	// hostmem: allocator and zeroing-bandwidth saturation. The busy
	// integral is event-driven (probe), so conservation properties hold
	// exactly, not just at sample instants.
	mem := h.Mem
	bw := mem.Bandwidth()
	membw := m.WatchResource(h.Opts.Scope + hostmem.MemBWName)
	m.GaugeFunc(MetricMembwInUse, "zeroing-bandwidth streams currently held", nil,
		func() float64 { return float64(bw.InUse()) })
	m.GaugeFunc(MetricMembwUtil, "zeroing-bandwidth utilization in percent of stream capacity", nil,
		func() float64 { return 100 * float64(bw.InUse()) / float64(bw.Cap()) })
	m.CounterFunc(MetricMembwBusy, "accumulated busy time across zeroing-bandwidth streams in stream-seconds", nil,
		func() float64 { return membw.Busy().Seconds() })
	m.GaugeFunc("hostmem_free_pages", "free physical pages",
		[]metrics.Label{{Key: "size", Value: pageSizeLabel(mem.PageSize())}},
		func() float64 { return float64(mem.FreePages()) })
	m.GaugeFunc(MetricDirtyPages, "pages holding residual data from a previous owner (the zeroing backlog)", nil,
		func() float64 { return float64(mem.DirtyPages()) })
	m.GaugeFunc(MetricPinnedPages, "pages with a live pin refcount", nil,
		func() float64 { return float64(mem.PinnedPages()) })
	m.CounterFunc(MetricZeroedBytes, "bytes cleared by the zeroing engine", nil,
		func() float64 { return float64(mem.ZeroedBytes) })

	// vfio: devset serialization (the paper's §3.2 bottleneck) and device
	// lifecycle. Queue depth is event-driven and exact at every transition.
	q := m.WatchLockQueue(h.Opts.Scope + vfio.DevsetLockPrefix)
	m.GaugeFunc(MetricDevsetQueueDepth, "containers queued on a vfio devset lock", nil,
		func() float64 { return float64(q.Depth()) })
	m.GaugeFunc(MetricDevsetQueuePeak, "maximum observed vfio devset lock queue depth", nil,
		func() float64 { return float64(q.Peak()) })
	m.GaugeFunc("vfio_open_fds", "open vfio device fds host-wide", nil,
		func() float64 { return float64(h.VFIO.TotalOpens()) })
	m.CounterFunc("vfio_flr_retries_total", "function-level resets reissued after injected failures", nil,
		func() float64 { return float64(h.VFIO.Stats.ResetRetries) })

	// fastiovd: the decoupled-zeroing data plane (absent on non-lazy
	// baselines).
	if h.Lazy != nil {
		lazy := h.Lazy
		m.GaugeFunc("fastiovd_deferred_pages", "pages tracked in fastiovd tables awaiting zeroing", nil,
			func() float64 { return float64(lazy.TrackedTotal()) })
		m.GaugeFunc("fastiovd_scrub_queue", "pages queued for the background scrubber (the instant-zeroing list)", nil,
			func() float64 { return float64(lazy.ScrubQueueLen()) })
		m.CounterFunc("fastiovd_lazy_zeroed_total", "pages zeroed proactively at EPT-fault time", nil,
			func() float64 { return float64(lazy.LazyZeroed) })
		m.CounterFunc("fastiovd_scrub_zeroed_total", "pages zeroed by the background scrubber", nil,
			func() float64 { return float64(lazy.ScrubZeroed) })
		m.CounterFunc("fastiovd_instant_zeroed_total", "pages zeroed synchronously on instant registration", nil,
			func() float64 { return float64(lazy.InstantZeroed) })
		m.CounterFunc("fastiovd_scrubber_stalls_total", "scrubber wakes lost to injected stalls", nil,
			func() float64 { return float64(lazy.ScrubberStalls) })
	}

	// kvm + iommu: demand-paging pressure and DMA mapping footprint.
	m.CounterFunc("kvm_ept_violations_total", "EPT violations taken across all VMs", nil,
		func() float64 { return float64(h.KVM.TotalFaults) })
	m.GaugeFunc("kvm_live_vms", "microVMs currently registered with KVM", nil,
		func() float64 { return float64(h.KVM.LiveVMs()) })
	m.GaugeFunc("iommu_mapped_pages", "live IOMMU-mapped (DMA-pinned) pages", nil,
		func() float64 { return float64(h.MMU.TotalMappedPages()) })
	m.GaugeFunc("iommu_domains", "live IOMMU domains", nil,
		func() float64 { return float64(h.MMU.Domains()) })

	// cluster: the startup wave itself. h.Rec is read through the field so
	// churn's per-wave recorder swaps stay visible.
	m.GaugeFunc(MetricStartupsInflight, "container startups currently in progress", nil,
		func() float64 { return float64(h.wave.inflight) })
	m.CounterFunc("cluster_startups_started_total", "container startups launched", nil,
		func() float64 { return float64(h.wave.started) })
	m.CounterFunc("cluster_startups_failed_total", "container startups lost to injected faults", nil,
		func() float64 { return float64(h.wave.failed) })
	m.CounterFunc("cluster_rollbacks_total", "compensating rollbacks recorded by telemetry", nil,
		func() float64 {
			n := 0
			for _, sp := range h.Rec.Spans() {
				if sp.Stage == telemetry.StageRollback {
					n++
				}
			}
			return float64(n)
		})
	h.startupHist = m.NewHistogram("cluster_startup_seconds", "end-to-end container startup latency", nil,
		[]float64{0.25, 0.5, 1, 2, 4, 8, 16, 32})
}
