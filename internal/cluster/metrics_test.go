package cluster

import (
	"bytes"
	"testing"
	"time"

	"fastiov/internal/hostmem"
	"fastiov/internal/vfio"
)

// meteredHost builds a host with metrics enabled on the given spec.
func meteredHost(t *testing.T, spec HostSpec, baseline string, mutate func(*Options)) *Host {
	t.Helper()
	opts, err := OptionsFor(baseline)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = 7
	opts.Metrics = true
	if mutate != nil {
		mutate(&opts)
	}
	h, err := NewHost(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestMembwConservation is the conservation property: the event-driven
// busy integral of the memory-bandwidth resource must equal total pages
// zeroed x the per-page zeroing cost, plus the image-copy population term
// on baselines that map the image region — exactly, not up to sampling
// error.
//
// The spec pins ZeroBytesPerSec to PageSize*1000, so one page costs
// exactly 1 ms of one stream and batched runs of n pages cost exactly
// n ms, with no integer truncation anywhere. Image population charges one
// stream for ImageBytes/ImageCopyBytesPerSec per container (the same
// integer expression the hypervisor uses). The property is checked on
// baselines whose bandwidth use all happens inside container-start procs
// (vanilla, and fastiov with the scrubber disabled): a background scrubber
// could be parked mid-acquisition at quiesce, which would legitimately
// split a page between the integral and the counter.
func TestMembwConservation(t *testing.T) {
	spec := DefaultHostSpec()
	spec.Memory.ZeroBytesPerSec = spec.Memory.PageSize * 1000 // exactly 1ms per page
	const n = 20
	for _, tc := range []struct {
		name     string
		baseline string
		// imageCopies counts membw acquisitions for image population:
		// vanilla maps + populates the image region per container; FastIOV's
		// SkipImageMap elides the whole stage.
		imageCopies int
		mutate      func(*Options)
	}{
		{"vanilla", BaselineVanilla, n, nil},
		{"fastiov-noscrub", BaselineFastIOV, 0, func(o *Options) { o.DisableScrubber = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := meteredHost(t, spec, tc.baseline, tc.mutate)
			res := h.StartupExperiment(n)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Metrics == nil || !res.Metrics.Sealed() {
				t.Fatal("no sealed metrics on the result")
			}
			if h.Mem.ZeroedBytes == 0 {
				t.Fatal("experiment zeroed no memory — conservation check is vacuous")
			}
			pages := h.Mem.ZeroedBytes / spec.Memory.PageSize
			perImage := time.Duration(h.Opts.Layout.ImageBytes * int64(time.Second) / h.Env.Costs.ImageCopyBytesPerSec)
			want := time.Duration(pages)*time.Millisecond + time.Duration(tc.imageCopies)*perImage
			if got := res.Metrics.BusyIntegral(hostmem.MemBWName); got != want {
				t.Errorf("membw busy integral = %v, want exactly %v (%d pages x 1ms + %d image copies x %v)",
					got, want, pages, tc.imageCopies, perImage)
			}
			if got := res.Metrics.Final(MetricZeroedBytes); got != float64(h.Mem.ZeroedBytes) {
				t.Errorf("sealed zeroed-bytes final = %v, want %d", got, h.Mem.ZeroedBytes)
			}
		})
	}
}

// TestDevsetQueueDepthContrast pins the paper's §3.2 story as observed by
// the metrics subsystem: under a concurrent startup wave, vanilla's shared
// devset lock builds a waiter queue, while FastIOV's lock decomposition
// keeps the queue empty.
func TestDevsetQueueDepthContrast(t *testing.T) {
	run := func(baseline string) *Host {
		h := meteredHost(t, DefaultHostSpec(), baseline, nil)
		res := h.StartupExperiment(30)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return h
	}
	vh := run(BaselineVanilla)
	if peak := vh.Metrics.QueuePeak(vfio.DevsetLockPrefix); peak == 0 {
		t.Error("vanilla: devset queue peak is 0 under a 30-container wave")
	}
	fh := run(BaselineFastIOV)
	if peak := fh.Metrics.QueuePeak(vfio.DevsetLockPrefix); peak != 0 {
		t.Errorf("fastiov: devset queue peak = %d, want 0 (lock decomposition)", peak)
	}
}

// TestMetricsSealedAgainstTeardown checks the exporter snapshot is taken
// at the end of the measured phase, before the audit teardown mutates the
// substrates: the sealed finals and exports must not move even though
// teardown frees pages, closes fds, and unmaps IOMMU entries afterwards.
func TestMetricsSealedAgainstTeardown(t *testing.T) {
	h := meteredHost(t, DefaultHostSpec(), BaselineVanilla, func(o *Options) { o.Audit = true })
	res := h.StartupExperiment(10)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Leaks == nil || !res.Leaks.Clean() {
		t.Fatalf("audit not clean: %v", res.Leaks)
	}
	// Teardown closed every sandbox fd, but the sealed final still shows
	// the open devices of the measured phase.
	if got := res.Metrics.Final("vfio_open_fds"); got == 0 {
		t.Error("sealed vfio_open_fds final is 0 — snapshot taken after teardown")
	}
	if live := h.VFIO.TotalOpens(); live != 0 {
		t.Fatalf("audit left %d fds open — teardown-isolation check is vacuous", live)
	}
	if got := res.Metrics.Final("cluster_startups_started_total"); got != 10 {
		t.Errorf("started final = %v, want 10", got)
	}
	if got := res.Metrics.Final(MetricStartupsInflight); got != 0 {
		t.Errorf("inflight final = %v, want 0", got)
	}
	var a, b bytes.Buffer
	if err := res.Metrics.WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := res.Metrics.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("post-teardown exports differ between calls")
	}
}

// TestStartupHistogramCounts checks the latency histogram saw one
// observation per successful container and its sum is positive.
func TestStartupHistogramCounts(t *testing.T) {
	h := meteredHost(t, DefaultHostSpec(), BaselineFastIOV, nil)
	res := h.StartupExperiment(15)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if h.startupHist == nil {
		t.Fatal("metered host has no startup histogram")
	}
	if got := h.startupHist.Count(); got != 15 {
		t.Errorf("histogram count = %d, want 15", got)
	}
	if h.startupHist.Sum() <= 0 {
		t.Error("histogram sum is not positive")
	}
	if got := res.Metrics.Final("cluster_startup_seconds"); got != 15 {
		t.Errorf("sampled histogram series final = %v, want cumulative count 15", got)
	}
}

// TestMetricsOffLeavesResultBare checks the default path: no registry is
// built, no probe is installed, and the result carries no metrics.
func TestMetricsOffLeavesResultBare(t *testing.T) {
	opts, err := OptionsFor(BaselineVanilla)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = 7
	h, err := NewHost(DefaultHostSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if h.Metrics != nil {
		t.Fatal("metrics registry built without Options.Metrics")
	}
	res := h.StartupExperiment(5)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Metrics != nil {
		t.Error("unmetered result carries a registry")
	}
}
