package cluster

// Boot-prefix snapshots. Booting a host is a pure function of
// (HostSpec, Options) that consumes no simulated time: it builds the page
// arrays, pre-creates and binds 256 VFs, registers them with VFIO, and
// spawns the background daemons. Experiment sweeps re-run that identical
// prefix for every (concurrency, arrival, ...) scenario sharing one
// baseline and seed. CaptureSnapshot freezes the post-boot hardware state
// once; RestoreSnapshot then stamps out fresh hosts by cloning it —
// skipping the array initialization, VF creation, and per-VF registration
// work — while replaying the boot's kernel-visible actions (probe attach,
// daemon spawns) in their original order, so the restored host's kernel
// clock, sequence numbers, probe stream, and PRNG position are
// byte-identical to a from-scratch boot. The experiment harness keys
// snapshots in its singleflight cache alongside the scenario results (see
// internal/experiments).

import (
	"fmt"
	"time"

	"fastiov/internal/audit"
	"fastiov/internal/fastiovd"
	"fastiov/internal/fault"
	"fastiov/internal/hostmem"
	"fastiov/internal/iommu"
	"fastiov/internal/kvm"
	"fastiov/internal/nic"
	"fastiov/internal/pci"
	"fastiov/internal/sim"
	"fastiov/internal/telemetry"
	"fastiov/internal/trace"
	"fastiov/internal/vfio"
)

// Snapshot is an immutable capture of a freshly booted host. It owns
// private master copies of the mutable hardware state (page arrays, PCI
// topology, NIC VF pool, VFIO registrations); RestoreSnapshot clones them
// again per restored host, so one Snapshot can be shared by concurrent
// restores.
type Snapshot struct {
	Spec HostSpec // as booted: Scope-prefixed NIC name already applied
	Opts Options

	mem  *hostmem.Allocator
	topo *pci.Topology
	nic  *nic.NIC
	vfio *vfio.Driver

	// Boot-time kernel clock and the audit baseline, recorded for the
	// restore path's self-check: a restored host must reproduce both
	// exactly or the snapshot is not transparent.
	now      sim.Duration
	seq      uint64
	procSeq  int
	baseline audit.Snapshot
}

// CaptureSnapshot freezes a freshly booted host's state. The host must be
// pristine — booted but never run: zero virtual time elapsed, no VMs, no
// IOMMU domains, no device opens, nothing tracked by fastiovd. Capturing a
// host with live work would silently drop it, so that is an error.
func CaptureSnapshot(h *Host) (*Snapshot, error) {
	now, seq, procSeq := h.K.Clock()
	if now != 0 {
		return nil, fmt.Errorf("cluster: snapshot of host at t=%v, want pristine boot (t=0)", now)
	}
	if n := h.KVM.LiveVMs(); n != 0 {
		return nil, fmt.Errorf("cluster: snapshot with %d live VMs", n)
	}
	if n := h.MMU.Domains(); n != 0 {
		return nil, fmt.Errorf("cluster: snapshot with %d live IOMMU domains", n)
	}
	if h.Lazy != nil && h.Lazy.TrackedTotal() != 0 {
		return nil, fmt.Errorf("cluster: snapshot with %d fastiovd-tracked pages", h.Lazy.TrackedTotal())
	}
	s := &Snapshot{
		Spec:     h.Spec,
		Opts:     h.Opts,
		now:      now,
		seq:      seq,
		procSeq:  procSeq,
		baseline: h.Baseline,
	}
	s.mem = h.Mem.Clone(h.K)
	topo, remap := h.Topo.Clone()
	s.topo = topo
	s.nic = h.NIC.Clone(h.K, remap)
	var err error
	s.vfio, err = h.VFIO.Clone(h.K, topo, s.mem, h.MMU, remap)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// RestoreSnapshot builds a fresh host from a boot-prefix snapshot,
// byte-identical to NewHost(snap.Spec, snap.Opts): the hardware state is
// cloned instead of rebuilt, and the boot sequence's kernel-visible
// actions (tracer attach, fault injector, daemon spawns, metrics) replay
// in their original order on a fresh kernel. The restored host verifies
// its kernel clock and audit baseline against the captured boot before
// returning.
func RestoreSnapshot(snap *Snapshot) (*Host, error) {
	opts := snap.Opts
	spec := snap.Spec // NIC name already Scope-prefixed at original boot
	k := sim.NewKernel(opts.Seed)
	h := &Host{
		K:          k,
		Spec:       spec,
		Opts:       opts,
		rng:        k.Rand(),
		Mem:        snap.mem.Clone(k),
		CPU:        sim.NewResource(opts.Scope+"cpu", spec.Cores),
		Rec:        telemetry.NewRecorder(),
		RTNL:       sim.NewMutex(opts.Scope + "rtnl"),
		CgroupLock: sim.NewMutex(opts.Scope + "cgroup"),
		IrqLock:    sim.NewMutex(opts.Scope + "irq-routing"),
	}
	topo, remap := snap.topo.Clone()
	h.Topo = topo
	// From here the order mirrors NewHostOn exactly: tracer before any
	// daemon spawn, scrubber before metrics, so clock/seq/probe streams
	// reproduce.
	if opts.Trace {
		h.Tracer = trace.Attach(k)
	}
	h.Faults = fault.NewInjector(opts.Seed, opts.Faults)
	pol := opts.Retry
	if pol.MaxAttempts == 0 {
		pol = fault.DefaultPolicy()
	}
	h.Mem.Faults = h.Faults

	h.MMU = iommu.New(k, h.Mem.PageSize())
	h.MMU.Faults = h.Faults
	h.NIC = snap.nic.Clone(k, remap)
	var err error
	h.VFIO, err = snap.vfio.Clone(k, topo, h.Mem, h.MMU, remap)
	if err != nil {
		return nil, err
	}
	h.VFIO.Faults = h.Faults
	h.VFIO.Retry = pol
	h.KVM = kvm.New(k, h.Mem)
	if opts.LazyZeroing {
		h.Lazy = fastiovd.New(k, h.Mem)
		h.Lazy.Faults = h.Faults
		h.KVM.Hook = h.Lazy.OnEPTFault
		if !opts.DisableScrubber {
			h.Lazy.StartScrubber(2*time.Millisecond, 8)
		}
	}
	// No PreZero and no VF binding here: both effects live in the cloned
	// page arrays and PCI/VFIO graphs.
	if err := h.wireStack(pol); err != nil {
		return nil, err
	}
	if now, seq, procSeq := k.Clock(); now != snap.now || seq != snap.seq || procSeq != snap.procSeq {
		return nil, fmt.Errorf("cluster: restored clock (t=%v seq=%d procs=%d) diverges from boot (t=%v seq=%d procs=%d)",
			now, seq, procSeq, snap.now, snap.seq, snap.procSeq)
	}
	if h.Baseline != snap.baseline {
		return nil, fmt.Errorf("cluster: restored audit baseline %+v diverges from boot %+v", h.Baseline, snap.baseline)
	}
	return h, nil
}

// AppendCanonical serializes the snapshot's observable state for
// determinism verification: a captured boot re-run from the same inputs
// must produce byte-identical encodings.
func (s *Snapshot) AppendCanonical(b []byte) []byte {
	b = fmt.Appendf(b, "boot %s seed=%d scope=%q\n", s.Opts.Name, s.Opts.Seed, s.Opts.Scope)
	b = fmt.Appendf(b, "clock t=%d seq=%d procs=%d\n", s.now, s.seq, s.procSeq)
	b = fmt.Appendf(b, "mem pages=%d free=%d dirty=%d statehash=%016x\n",
		s.mem.TotalPages(), s.mem.FreePages(), s.mem.DirtyPages(), s.mem.StateDigest())
	b = fmt.Appendf(b, "nic vfs=%d free=%d\n", len(s.nic.VFs()), s.nic.FreeVFs())
	b = fmt.Appendf(b, "vfio registered=%d opens=%d\n", s.vfio.RegisteredCount(), s.vfio.TotalOpens())
	b = fmt.Appendf(b, "audit %+v\n", s.baseline)
	return b
}
