package cluster

// Regression coverage for boot-prefix snapshot transparency: a host
// restored from a snapshot must be indistinguishable — down to the byte —
// from a host booted from scratch with the same inputs. Any divergence in
// the kernel clock, probe stream, PRNG position, or hardware state shows
// up as differing experiment results here.

import (
	"bytes"
	"fmt"
	"testing"
)

// experimentBytes canonically encodes everything an experiment observes:
// per-container totals, VF-related times, the full telemetry record, and
// the trace digest when recorded.
func experimentBytes(res *Result) []byte {
	var b []byte
	for _, d := range res.Totals.Values() {
		b = fmt.Appendf(b, "total %d\n", d)
	}
	for _, d := range res.VFRelated.Values() {
		b = fmt.Appendf(b, "vf %d\n", d)
	}
	if res.Trace != nil {
		b = fmt.Appendf(b, "trace events=%d fp=%016x\n", res.Trace.Len(), res.Trace.Fingerprint())
	}
	return res.Recorder.AppendCanonical(b)
}

func bootFor(t *testing.T, name string, traced bool) (HostSpec, Options) {
	t.Helper()
	opts, err := OptionsFor(name)
	if err != nil {
		t.Fatal(err)
	}
	opts.Trace = traced
	opts.Audit = true
	return DefaultHostSpec(), opts
}

// TestSnapshotRestoreByteIdentical runs the same startup experiment on a
// from-scratch host and on a snapshot-restored host and requires
// byte-identical results, traced and untraced, across baselines.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		traced bool
	}{
		{BaselineVanilla, false},
		{BaselineVanilla, true},
		{BaselineFastIOV, true},
		{BaselinePre50, false},
	} {
		t.Run(fmt.Sprintf("%s/trace=%v", tc.name, tc.traced), func(t *testing.T) {
			spec, opts := bootFor(t, tc.name, tc.traced)
			fresh, err := NewHost(spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			src, err := NewHost(spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := CaptureSnapshot(src)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreSnapshot(snap)
			if err != nil {
				t.Fatal(err)
			}
			want := fresh.StartupExperiment(50)
			got := restored.StartupExperiment(50)
			if want.Err != nil || got.Err != nil {
				t.Fatalf("experiment errors: fresh=%v restored=%v", want.Err, got.Err)
			}
			wb, gb := experimentBytes(want), experimentBytes(got)
			if !bytes.Equal(wb, gb) {
				t.Fatalf("restored host's experiment diverges from from-scratch boot\nfresh   %d bytes\nrestored %d bytes", len(wb), len(gb))
			}
		})
	}
}

// TestSnapshotSharedByConcurrentRestores restores the same snapshot twice
// and runs both: one immutable master must stamp out independent,
// identical hosts.
func TestSnapshotSharedByConcurrentRestores(t *testing.T) {
	spec, opts := bootFor(t, BaselineFastIOV, true)
	src, err := NewHost(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := CaptureSnapshot(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	ra := a.StartupExperiment(30)
	rb := b.StartupExperiment(30)
	if ra.Err != nil || rb.Err != nil {
		t.Fatalf("experiment errors: %v / %v", ra.Err, rb.Err)
	}
	if !bytes.Equal(experimentBytes(ra), experimentBytes(rb)) {
		t.Fatal("two restores of one snapshot produced diverging experiments")
	}
}

// TestSnapshotCanonicalDeterministic captures two independent boots of the
// same inputs and requires byte-identical canonical encodings (the check
// -verify-determinism performs on the boot cache).
func TestSnapshotCanonicalDeterministic(t *testing.T) {
	spec, opts := bootFor(t, BaselineVanilla, false)
	var caps [2][]byte
	for i := range caps {
		h, err := NewHost(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := CaptureSnapshot(h)
		if err != nil {
			t.Fatal(err)
		}
		caps[i] = snap.AppendCanonical(nil)
	}
	if !bytes.Equal(caps[0], caps[1]) {
		t.Fatalf("double-boot canonical encodings diverge:\n%s\nvs\n%s", caps[0], caps[1])
	}
}

// TestSnapshotRejectsNonPristineHost pins the capture precondition: a host
// that has already run work cannot be snapshotted.
func TestSnapshotRejectsNonPristineHost(t *testing.T) {
	spec, opts := bootFor(t, BaselineVanilla, false)
	h, err := NewHost(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res := h.StartupExperiment(5); res.Err != nil {
		t.Fatal(res.Err)
	}
	if _, err := CaptureSnapshot(h); err == nil {
		t.Fatal("CaptureSnapshot accepted a host with completed work; want pristine-boot error")
	}
}
