// Package cni implements the Container Network Interface plugin layer:
// the vanilla SR-IOV CNI (with and without the driver-rebinding
// implementation flaw of §5), the FastIOV CNI, and the IPvtap software CNI
// baseline of §6.4.
package cni

import (
	"fmt"
	"time"

	"fastiov/internal/fault"
	"fastiov/internal/nic"
	"fastiov/internal/sim"
	"fastiov/internal/telemetry"
	"fastiov/internal/vfio"
)

// SpanFn records a stage interval (same shape as hypervisor.SpanFn).
type SpanFn func(stage telemetry.Stage, start, end time.Duration)

// Result is what a plugin hands back to the container runtime.
type Result struct {
	// VF is the allocated virtual function (nil for software CNIs).
	VF *nic.VF
	// VFIODev is the VF's VFIO registration if it is already bound to
	// vfio-pci (the fixed CNIs); nil means the runtime must rebind.
	VFIODev *vfio.Device
	// Ifname is the Linux interface the runtime detects in the sandbox
	// network namespace (a real VF netdev, a dummy, or an ipvtap device).
	Ifname string
}

// Plugin is the CNI contract: Add configures networking for a sandbox
// before the runtime starts the microVM; Del tears it down.
type Plugin interface {
	Name() string
	Add(p *sim.Proc, sandboxID int, rec SpanFn) (*Result, error)
	Del(p *sim.Proc, sandboxID int, res *Result) error
}

// Costs shared by the plugins.
type Costs struct {
	// VFParamSetup is the PF-driver call configuring VF parameters
	// (MAC, VLAN, spoof check).
	VFParamSetup time.Duration
	// MoveToNNS is moving an interface into the sandbox namespace.
	MoveToNNS time.Duration
	// RTNLHoldDummy is the rtnl-lock hold to create a dummy interface.
	RTNLHoldDummy time.Duration
	// RTNLHoldIpvtap is the rtnl-lock hold to create and configure an
	// ipvtap device — the kernel-network-call serialization behind the
	// software CNI's addCNI bottleneck (§6.4).
	RTNLHoldIpvtap time.Duration
	// IpvtapCgroupHold is the extra cgroup-lock work software CNIs do for
	// per-device resource isolation (§6.4's second deficiency).
	IpvtapCgroupHold time.Duration
	// IPConfig is address/route configuration on the interface.
	IPConfig time.Duration
	// AddTimeout is the plugin's own device-wait budget: an injected
	// add-device fault consumes this much time before the Add call returns
	// its timeout error (real CNIs block on netlink/device readiness until
	// their deadline fires).
	AddTimeout time.Duration
}

// DefaultCosts mirrors the calibration in DESIGN.md.
func DefaultCosts() Costs {
	return Costs{
		VFParamSetup:     2 * time.Millisecond,
		MoveToNNS:        1 * time.Millisecond,
		RTNLHoldDummy:    1 * time.Millisecond,
		RTNLHoldIpvtap:   18 * time.Millisecond,
		IpvtapCgroupHold: 12 * time.Millisecond,
		IPConfig:         2 * time.Millisecond,
		AddTimeout:       20 * time.Millisecond,
	}
}

// SRIOV is the SR-IOV CNI plugin family.
//
// Rebind=true reproduces the upstream plugin's flaw: every Add binds the VF
// to the host network driver to materialize a netdev, and the runtime must
// later unbind it and rebind vfio-pci (the dashed boxes in Fig. 4).
// Rebind=false is the fixed plugin (§5): VFs stay bound to vfio-pci from
// host boot and a dummy interface carries the configuration; this fixed
// variant is the paper's "Vanilla" baseline and also the FastIOV CNI's
// plugin side.
type SRIOV struct {
	name   string
	card   *nic.NIC
	vfio   *vfio.Driver
	rtnl   *sim.Mutex
	costs  Costs
	Rebind bool

	// Faults, when non-nil, can time out Add calls (before any VF is
	// allocated, so a retried Add starts clean) and inflate the rtnl hold.
	Faults *fault.Injector
}

// NewSRIOV builds an SR-IOV plugin. rtnl is the host's global rtnl lock.
func NewSRIOV(name string, card *nic.NIC, drv *vfio.Driver, rtnl *sim.Mutex, costs Costs, rebind bool) *SRIOV {
	return &SRIOV{name: name, card: card, vfio: drv, rtnl: rtnl, costs: costs, Rebind: rebind}
}

// Name implements Plugin.
func (s *SRIOV) Name() string { return s.name }

// Add allocates a VF and prepares its sandbox-visible interface.
func (s *SRIOV) Add(p *sim.Proc, sandboxID int, rec SpanFn) (*Result, error) {
	if err := s.Faults.Fail(fault.SiteCNIAdd); err != nil {
		// The add blocks on device readiness until its own deadline fires,
		// then fails — before any VF is allocated, so the runtime's retry
		// does not leak one.
		p.Sleep(s.costs.AddTimeout)
		return nil, fmt.Errorf("cni %s: add sandbox %d: %w", s.name, sandboxID, err)
	}
	vf, err := s.card.AllocVF()
	if err != nil {
		return nil, err
	}
	p.Sleep(s.costs.VFParamSetup)
	res := &Result{VF: vf}
	if s.Rebind {
		// Flawed path: bind the host network driver to get a real netdev.
		vf.Dev.Bind(p, "iavf", s.vfio.BindCost())
		vf.HostIfname = fmt.Sprintf("eth-vf%d", vf.Index)
		res.Ifname = vf.HostIfname
	} else {
		// Fixed path: the VF stays on vfio-pci (pre-bound at host boot);
		// a dummy interface carries the CNI configuration.
		vd, ok := s.vfio.Lookup(vf.Dev)
		if !ok {
			s.card.ReleaseVF(vf)
			return nil, fmt.Errorf("cni %s: VF %s not registered with VFIO", s.name, vf.Dev.Addr)
		}
		s.rtnl.Lock(p)
		p.Sleep(s.Faults.Inflate(fault.SiteCNIAdd, s.costs.RTNLHoldDummy))
		s.rtnl.Unlock(p)
		res.VFIODev = vd
		res.Ifname = fmt.Sprintf("dummy-vf%d", vf.Index)
	}
	p.Sleep(s.costs.IPConfig)
	p.Sleep(s.costs.MoveToNNS)
	return res, nil
}

// Del releases the VF (and, on the flawed path, unbinds the host driver if
// the runtime has not already done so).
func (s *SRIOV) Del(p *sim.Proc, sandboxID int, res *Result) error {
	if res.VF == nil {
		return fmt.Errorf("cni %s: no VF in result", s.name)
	}
	if res.VF.Dev.Driver() == "iavf" {
		res.VF.Dev.Unbind(p, s.vfio.UnbindCost())
	}
	s.card.ReleaseVF(res.VF)
	return nil
}

// IPvtap is the basic software CNI baseline (§6.4): it creates an ipvtap
// virtual device under the rtnl lock and performs per-device cgroup work,
// both of which serialize host-wide.
type IPvtap struct {
	rtnl       *sim.Mutex
	cgroupLock *sim.Mutex
	costs      Costs

	// Faults mirrors SRIOV.Faults for the software-CNI path.
	Faults *fault.Injector
}

// NewIPvtap builds the plugin; rtnl and cgroupLock are host-global.
func NewIPvtap(rtnl, cgroupLock *sim.Mutex, costs Costs) *IPvtap {
	return &IPvtap{rtnl: rtnl, cgroupLock: cgroupLock, costs: costs}
}

// Name implements Plugin.
func (t *IPvtap) Name() string { return "ipvtap" }

// Add creates and configures the ipvtap device.
func (t *IPvtap) Add(p *sim.Proc, sandboxID int, rec SpanFn) (*Result, error) {
	if err := t.Faults.Fail(fault.SiteCNIAdd); err != nil {
		p.Sleep(t.costs.AddTimeout)
		return nil, fmt.Errorf("cni ipvtap: add sandbox %d: %w", sandboxID, err)
	}
	start := p.Now()
	t.rtnl.Lock(p)
	p.Sleep(t.Faults.Inflate(fault.SiteCNIAdd, t.costs.RTNLHoldIpvtap))
	t.rtnl.Unlock(p)
	p.Sleep(t.costs.IPConfig)
	p.Sleep(t.costs.MoveToNNS)
	if rec != nil {
		rec(telemetry.StageAddCNI, start, p.Now())
	}
	// Per-device resource isolation: extra cgroup-lock work.
	start = p.Now()
	t.cgroupLock.Lock(p)
	p.Sleep(t.costs.IpvtapCgroupHold)
	t.cgroupLock.Unlock(p)
	if rec != nil {
		rec(telemetry.StageCgroup, start, p.Now())
	}
	return &Result{Ifname: fmt.Sprintf("ipvtap%d", sandboxID)}, nil
}

// Del removes the device.
func (t *IPvtap) Del(p *sim.Proc, sandboxID int, res *Result) error {
	t.rtnl.Lock(p)
	p.Sleep(t.costs.RTNLHoldDummy)
	t.rtnl.Unlock(p)
	return nil
}

// NoNetwork is the no-network lower bound (§6.1 baselines).
type NoNetwork struct{}

// Name implements Plugin.
func (NoNetwork) Name() string { return "no-network" }

// Add does nothing.
func (NoNetwork) Add(p *sim.Proc, sandboxID int, rec SpanFn) (*Result, error) {
	return &Result{}, nil
}

// Del does nothing.
func (NoNetwork) Del(p *sim.Proc, sandboxID int, res *Result) error { return nil }
