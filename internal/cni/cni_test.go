package cni

import (
	"testing"
	"time"

	"fastiov/internal/hostmem"
	"fastiov/internal/iommu"
	"fastiov/internal/nic"
	"fastiov/internal/pci"
	"fastiov/internal/sim"
	"fastiov/internal/telemetry"
	"fastiov/internal/vfio"
)

type rig struct {
	k    *sim.Kernel
	card *nic.NIC
	drv  *vfio.Driver
	rtnl *sim.Mutex
	cg   *sim.Mutex
}

// newRig builds a host with nVFs VFs; preBind binds them to vfio-pci at
// boot (the fixed-CNI discipline).
func newRig(t *testing.T, nVFs int, preBind bool) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	topo := pci.NewTopology()
	memCfg := hostmem.DefaultConfig()
	memCfg.TotalBytes = 1 << 30
	mem := hostmem.New(k, memCfg)
	card := nic.New(k, topo, nic.DefaultConfig())
	if err := card.CreateVFs(nil, nVFs, topo); err != nil {
		t.Fatal(err)
	}
	drv := vfio.New(k, topo, mem, iommu.New(k, mem.PageSize()), vfio.LockGlobal, vfio.DefaultCosts())
	if preBind {
		for _, vf := range card.VFs() {
			vf.Dev.BindBoot("vfio-pci")
			if _, err := drv.Register(vf.Dev); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &rig{k: k, card: card, drv: drv, rtnl: sim.NewMutex("rtnl"), cg: sim.NewMutex("cgroup")}
}

func TestFixedSRIOVReturnsVFIODevice(t *testing.T) {
	r := newRig(t, 2, true)
	plugin := NewSRIOV("sriov", r.card, r.drv, r.rtnl, DefaultCosts(), false)
	r.k.Go("t", func(p *sim.Proc) {
		res, err := plugin.Add(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.VF == nil || res.VFIODev == nil {
			t.Fatal("fixed CNI must return a VFIO-registered VF")
		}
		if res.VF.Dev.Driver() != "vfio-pci" {
			t.Errorf("VF driver = %q, want vfio-pci (never rebound)", res.VF.Dev.Driver())
		}
		if res.Ifname == "" {
			t.Error("no sandbox interface name")
		}
		if err := plugin.Del(p, 0, res); err != nil {
			t.Fatal(err)
		}
	})
	r.k.Run()
	if r.card.FreeVFs() != 2 {
		t.Errorf("VF not returned to pool: %d free", r.card.FreeVFs())
	}
}

func TestRebindSRIOVBindsHostDriver(t *testing.T) {
	r := newRig(t, 1, false)
	plugin := NewSRIOV("sriov-rebind", r.card, r.drv, r.rtnl, DefaultCosts(), true)
	r.k.Go("t", func(p *sim.Proc) {
		res, err := plugin.Add(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.VFIODev != nil {
			t.Error("rebind CNI should not return a VFIO device")
		}
		if res.VF.Dev.Driver() != "iavf" {
			t.Errorf("VF driver = %q, want iavf", res.VF.Dev.Driver())
		}
		if err := plugin.Del(p, 0, res); err != nil {
			t.Fatal(err)
		}
		if res.VF.Dev.Driver() != "" {
			t.Errorf("driver after del = %q", res.VF.Dev.Driver())
		}
	})
	r.k.Run()
}

func TestFixedFasterThanRebind(t *testing.T) {
	measure := func(rebind bool) sim.Duration {
		r := newRig(t, 1, !rebind)
		plugin := NewSRIOV("x", r.card, r.drv, r.rtnl, DefaultCosts(), rebind)
		var elapsed sim.Duration
		r.k.Go("t", func(p *sim.Proc) {
			start := p.Now()
			if _, err := plugin.Add(p, 0, nil); err != nil {
				t.Fatal(err)
			}
			elapsed = p.Now() - start
		})
		r.k.Run()
		return elapsed
	}
	if fixed, rebind := measure(false), measure(true); fixed >= rebind {
		t.Errorf("fixed CNI add (%v) should be faster than rebind (%v)", fixed, rebind)
	}
}

func TestVFExhaustion(t *testing.T) {
	r := newRig(t, 1, true)
	plugin := NewSRIOV("sriov", r.card, r.drv, r.rtnl, DefaultCosts(), false)
	r.k.Go("t", func(p *sim.Proc) {
		if _, err := plugin.Add(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := plugin.Add(p, 1, nil); err == nil {
			t.Error("second add with one VF should fail")
		}
	})
	r.k.Run()
}

func TestFixedCNIRequiresRegistration(t *testing.T) {
	r := newRig(t, 1, false) // VFs not pre-bound
	plugin := NewSRIOV("sriov", r.card, r.drv, r.rtnl, DefaultCosts(), false)
	r.k.Go("t", func(p *sim.Proc) {
		if _, err := plugin.Add(p, 0, nil); err == nil {
			t.Error("fixed CNI on unregistered VF should fail")
		}
	})
	r.k.Run()
	// The failed add must have returned the VF to the pool.
	if r.card.FreeVFs() != 1 {
		t.Errorf("leaked VF on failure: %d free", r.card.FreeVFs())
	}
}

func TestIPvtapRecordsStages(t *testing.T) {
	r := newRig(t, 1, false)
	plugin := NewIPvtap(r.rtnl, r.cg, DefaultCosts())
	var stages []telemetry.Stage
	rec := func(st telemetry.Stage, s, e time.Duration) { stages = append(stages, st) }
	r.k.Go("t", func(p *sim.Proc) {
		res, err := plugin.Add(p, 3, rec)
		if err != nil {
			t.Fatal(err)
		}
		if res.VF != nil {
			t.Error("software CNI returned a VF")
		}
		if res.Ifname != "ipvtap3" {
			t.Errorf("ifname = %q", res.Ifname)
		}
		if err := plugin.Del(p, 3, res); err != nil {
			t.Fatal(err)
		}
	})
	r.k.Run()
	if len(stages) != 2 || stages[0] != telemetry.StageAddCNI || stages[1] != telemetry.StageCgroup {
		t.Errorf("stages = %v", stages)
	}
}

func TestIPvtapContendsOnRTNL(t *testing.T) {
	r := newRig(t, 1, false)
	plugin := NewIPvtap(r.rtnl, r.cg, DefaultCosts())
	n := 8
	for i := 0; i < n; i++ {
		i := i
		r.k.Go("add", func(p *sim.Proc) {
			if _, err := plugin.Add(p, i, nil); err != nil {
				t.Error(err)
			}
		})
	}
	end := r.k.Run()
	costs := DefaultCosts()
	// The rtnl and cgroup phases pipeline across containers, but within
	// each lock the adds serialize: makespan >= n * rtnl hold.
	minSerial := time.Duration(n) * costs.RTNLHoldIpvtap
	if end < minSerial {
		t.Errorf("ipvtap adds not serialized: makespan %v < %v", end, minSerial)
	}
}

func TestNoNetworkPlugin(t *testing.T) {
	k := sim.NewKernel(1)
	var plugin Plugin = NoNetwork{}
	if plugin.Name() != "no-network" {
		t.Error("name")
	}
	k.Go("t", func(p *sim.Proc) {
		res, err := plugin.Add(p, 0, nil)
		if err != nil || res.VF != nil {
			t.Errorf("res=%+v err=%v", res, err)
		}
		if err := plugin.Del(p, 0, res); err != nil {
			t.Error(err)
		}
	})
	k.Run()
}

func TestSRIOVDelWithoutVFFails(t *testing.T) {
	r := newRig(t, 1, true)
	plugin := NewSRIOV("sriov", r.card, r.drv, r.rtnl, DefaultCosts(), false)
	r.k.Go("t", func(p *sim.Proc) {
		if err := plugin.Del(p, 0, &Result{}); err == nil {
			t.Error("del without VF should fail")
		}
	})
	r.k.Run()
}
