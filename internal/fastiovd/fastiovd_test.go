package fastiovd

import (
	"testing"
	"time"

	"fastiov/internal/hostmem"
	"fastiov/internal/kvm"
	"fastiov/internal/sim"
)

const mb = int64(1) << 20

type rig struct {
	k   *sim.Kernel
	mem *hostmem.Allocator
	h   *kvm.KVM
	mod *Module
}

func newRig() *rig {
	k := sim.NewKernel(1)
	cfg := hostmem.DefaultConfig()
	cfg.TotalBytes = 2 << 30
	mem := hostmem.New(k, cfg)
	h := kvm.New(k, mem)
	mod := New(k, mem)
	h.Hook = mod.OnEPTFault
	return &rig{k: k, mem: mem, h: h, mod: mod}
}

func TestLazyZeroOnFirstFault(t *testing.T) {
	r := newRig()
	r.k.Go("t", func(p *sim.Proc) {
		region, _ := r.mem.Allocate(p, 16*mb)
		vm := r.h.CreateVM()
		vm.AddSlot("ram", 0, 16*mb, region)
		r.mod.Register(p, vm.PID, region)
		if r.mod.Tracked(vm.PID) != 8 {
			t.Fatalf("tracked %d pages, want 8", r.mod.Tracked(vm.PID))
		}
		// Guest reads everything: each first touch must zero just in time.
		if err := vm.TouchRange(p, 0, 16*mb, false); err != nil {
			t.Fatal(err)
		}
		if r.mod.Tracked(vm.PID) != 0 {
			t.Errorf("%d pages still tracked after full touch", r.mod.Tracked(vm.PID))
		}
	})
	r.k.Run()
	if r.mem.Violations != 0 {
		t.Errorf("lazy zeroing exposed %d dirty pages", r.mem.Violations)
	}
	if r.mod.LazyZeroed != 8 {
		t.Errorf("lazy-zeroed %d pages, want 8", r.mod.LazyZeroed)
	}
	if r.mod.Corruptions != 0 {
		t.Errorf("corruptions = %d", r.mod.Corruptions)
	}
}

func TestUntouchedPagesNeverZeroed(t *testing.T) {
	// The second benefit of lazy zeroing (§3.2.3): memory the app never
	// touches is never cleared at all.
	r := newRig()
	r.k.Go("t", func(p *sim.Proc) {
		region, _ := r.mem.Allocate(p, 32*mb)
		vm := r.h.CreateVM()
		vm.AddSlot("ram", 0, 32*mb, region)
		r.mod.Register(p, vm.PID, region)
		vm.TouchRange(p, 0, 8*mb, true) // touch only a quarter
	})
	r.k.Run()
	if r.mod.LazyZeroed != 4 {
		t.Errorf("lazy-zeroed %d pages, want 4", r.mod.LazyZeroed)
	}
	if r.mod.TrackedTotal() != 12 {
		t.Errorf("tracked = %d, want 12 untouched pages", r.mod.TrackedTotal())
	}
}

func TestRegistrationDefersZeroCost(t *testing.T) {
	// Registering must be orders of magnitude cheaper than zeroing: that
	// is the entire point of decoupling.
	r := newRig()
	var regCost, zeroCost time.Duration
	r.k.Go("t", func(p *sim.Proc) {
		regionA, _ := r.mem.Allocate(p, 512*mb)
		start := p.Now()
		r.mod.Register(p, 1, regionA)
		regCost = p.Now() - start

		regionB, _ := r.mem.Allocate(p, 512*mb)
		start = p.Now()
		r.mem.ZeroRegion(p, regionB)
		zeroCost = p.Now() - start
	})
	r.k.Run()
	if regCost*100 > zeroCost {
		t.Errorf("registration (%v) not ≪ zeroing (%v)", regCost, zeroCost)
	}
}

func TestInstantZeroingListPreventsCorruption(t *testing.T) {
	// Correct protocol: BIOS/kernel region goes on the instant-zeroing
	// list; the hypervisor writes it; guest boots and reads it. No page is
	// lazily zeroed after the hypervisor write → no corruption.
	r := newRig()
	r.k.Go("t", func(p *sim.Proc) {
		ram, _ := r.mem.Allocate(p, 16*mb)
		kernelRegion, _ := r.mem.Allocate(p, 8*mb)
		vm := r.h.CreateVM()
		vm.AddSlot("ram", 0, 16*mb, ram)
		vm.AddSlot("kernel", 16*mb, 8*mb, kernelRegion)
		r.mod.Register(p, vm.PID, ram)
		r.mod.RegisterInstant(p, vm.PID, kernelRegion)
		// Hypervisor loads the kernel image.
		vm.HostWrite(p, 16*mb, 8*mb)
		// Guest boots: reads kernel, touches RAM.
		vm.TouchRange(p, 16*mb, 8*mb, false)
		vm.TouchRange(p, 0, 16*mb, true)
	})
	r.k.Run()
	if r.mod.Corruptions != 0 {
		t.Errorf("corruptions = %d with instant-zeroing list", r.mod.Corruptions)
	}
	if r.mem.Violations != 0 {
		t.Errorf("violations = %d", r.mem.Violations)
	}
	if r.mod.InstantZeroed != 4 {
		t.Errorf("instant-zeroed %d pages, want 4", r.mod.InstantZeroed)
	}
}

func TestMissingInstantListCausesCorruption(t *testing.T) {
	// Negative test (the §4.3.2 crash): track the kernel region like
	// ordinary RAM, let the hypervisor write it, then boot. The first
	// guest fault lazily zeroes the freshly written kernel — corruption.
	r := newRig()
	r.k.Go("t", func(p *sim.Proc) {
		kernelRegion, _ := r.mem.Allocate(p, 8*mb)
		vm := r.h.CreateVM()
		vm.AddSlot("kernel", 0, 8*mb, kernelRegion)
		r.mod.Register(p, vm.PID, kernelRegion) // WRONG: no instant list
		vm.HostWrite(p, 0, 8*mb)
		vm.TouchRange(p, 0, 8*mb, false)
	})
	r.k.Run()
	if r.mod.Corruptions == 0 {
		t.Error("expected corruption when hypervisor-written pages are lazily zeroed")
	}
}

func TestProactiveFaultFencesVirtioWrite(t *testing.T) {
	// Para-virtualized transfer (§4.3.2 second exception): the frontend
	// proactively faults the shared buffer (a read of the first byte of
	// each page) BEFORE the backend writes file data. Then the backend
	// write lands on an already-zeroed page and no later zeroing occurs.
	r := newRig()
	r.k.Go("t", func(p *sim.Proc) {
		ram, _ := r.mem.Allocate(p, 16*mb)
		vm := r.h.CreateVM()
		vm.AddSlot("ram", 0, 16*mb, ram)
		r.mod.Register(p, vm.PID, ram)

		buf := int64(4 * mb) // shared buffer GPA
		// Frontend: proactive EPT faults over the buffer.
		vm.TouchRange(p, buf, 4*mb, false)
		// Backend: writes file data into the buffer (host-side write).
		vm.HostWrite(p, buf, 4*mb)
		// Guest reads the file data.
		vm.TouchRange(p, buf, 4*mb, false)
	})
	r.k.Run()
	if r.mod.Corruptions != 0 {
		t.Errorf("corruptions = %d with proactive faults", r.mod.Corruptions)
	}
	if r.mem.Violations != 0 {
		t.Errorf("violations = %d", r.mem.Violations)
	}
}

func TestMissingProactiveFaultCorruptsVirtioData(t *testing.T) {
	// Negative: backend writes first, THEN the guest's first touch faults
	// and fastiovd zeroes the freshly written file data.
	r := newRig()
	r.k.Go("t", func(p *sim.Proc) {
		ram, _ := r.mem.Allocate(p, 16*mb)
		vm := r.h.CreateVM()
		vm.AddSlot("ram", 0, 16*mb, ram)
		r.mod.Register(p, vm.PID, ram)
		vm.HostWrite(p, 4*mb, 4*mb)         // backend writes unfenced buffer
		vm.TouchRange(p, 4*mb, 4*mb, false) // guest read faults → zeroes data
	})
	r.k.Run()
	if r.mod.Corruptions == 0 {
		t.Error("expected corruption without proactive faults")
	}
}

func TestScrubberDrainsTable(t *testing.T) {
	r := newRig()
	r.mod.StartScrubber(time.Millisecond, 16)
	r.k.Go("t", func(p *sim.Proc) {
		region, _ := r.mem.Allocate(p, 64*mb)
		vm := r.h.CreateVM()
		vm.AddSlot("ram", 0, 64*mb, region)
		r.mod.Register(p, vm.PID, region)
		p.Sleep(100 * time.Millisecond)
	})
	r.k.Run()
	if r.mod.TrackedTotal() != 0 {
		t.Errorf("scrubber left %d pages tracked", r.mod.TrackedTotal())
	}
	if r.mod.ScrubZeroed != 32 {
		t.Errorf("scrub-zeroed %d pages, want 32", r.mod.ScrubZeroed)
	}
}

func TestScrubberAndFaultPathCompose(t *testing.T) {
	// Pages zeroed by the scrubber must not be re-zeroed by the fault path
	// and vice versa; the total equals the region page count.
	r := newRig()
	r.mod.StartScrubber(500*time.Microsecond, 2)
	r.k.Go("t", func(p *sim.Proc) {
		region, _ := r.mem.Allocate(p, 64*mb)
		vm := r.h.CreateVM()
		vm.AddSlot("ram", 0, 64*mb, region)
		r.mod.Register(p, vm.PID, region)
		// Slowly touch all pages while the scrubber races.
		for off := int64(0); off < 64*mb; off += 2 * mb {
			p.Sleep(300 * time.Microsecond)
			if err := vm.Touch(p, off, false); err != nil {
				t.Fatal(err)
			}
		}
	})
	r.k.Run()
	if got := r.mod.LazyZeroed + r.mod.ScrubZeroed; got != 32 {
		t.Errorf("lazy(%d)+scrub(%d) = %d, want 32", r.mod.LazyZeroed, r.mod.ScrubZeroed, got)
	}
	if r.mem.Violations != 0 {
		t.Errorf("violations = %d", r.mem.Violations)
	}
}

func TestReleaseDropsTable(t *testing.T) {
	r := newRig()
	r.k.Go("t", func(p *sim.Proc) {
		region, _ := r.mem.Allocate(p, 16*mb)
		r.mod.Register(p, 42, region)
		r.mod.Release(42)
	})
	r.k.Run()
	if r.mod.TrackedTotal() != 0 {
		t.Error("release left pages tracked")
	}
}

func TestTwoVMsTrackedIndependently(t *testing.T) {
	r := newRig()
	r.k.Go("t", func(p *sim.Proc) {
		ra, _ := r.mem.Allocate(p, 8*mb)
		rb, _ := r.mem.Allocate(p, 16*mb)
		vmA := r.h.CreateVM()
		vmB := r.h.CreateVM()
		vmA.AddSlot("ram", 0, 8*mb, ra)
		vmB.AddSlot("ram", 0, 16*mb, rb)
		r.mod.Register(p, vmA.PID, ra)
		r.mod.Register(p, vmB.PID, rb)
		if r.mod.Tracked(vmA.PID) != 4 || r.mod.Tracked(vmB.PID) != 8 {
			t.Fatalf("tracked A=%d B=%d", r.mod.Tracked(vmA.PID), r.mod.Tracked(vmB.PID))
		}
		vmA.TouchRange(p, 0, 8*mb, true)
		if r.mod.Tracked(vmA.PID) != 0 {
			t.Error("A still tracked")
		}
		if r.mod.Tracked(vmB.PID) != 8 {
			t.Error("touching A drained B's table")
		}
	})
	r.k.Run()
}

func TestFaultOnUntrackedPIDIsNoop(t *testing.T) {
	r := newRig()
	r.k.Go("t", func(p *sim.Proc) {
		region, _ := r.mem.Allocate(p, 8*mb)
		r.mem.ZeroRegion(p, region)
		vm := r.h.CreateVM()
		vm.AddSlot("ram", 0, 8*mb, region)
		// No Register call: fastiovd must pass faults through untouched.
		vm.TouchRange(p, 0, 8*mb, false)
	})
	r.k.Run()
	if r.mod.LazyZeroed != 0 {
		t.Errorf("lazy-zeroed %d pages for untracked VM", r.mod.LazyZeroed)
	}
}
