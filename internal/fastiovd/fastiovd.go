// Package fastiovd is the reproduction of the paper's portable kernel
// module (§5): the heart of FastIOV's decoupled lazy zeroing (§4.3.2).
//
// It maintains a two-tier hash table — first tier keyed by the microVM's
// host PID, second tier by HPA page — of physical pages whose zeroing has
// been deferred. Zeroing happens at the latest safe moment:
//
//   - on the page's first EPT fault (hooked into KVM),
//   - or earlier, by a background scrubber thread that drains the table
//     during idle time,
//   - or never by fastiovd, for pages on the instant-zeroing list (BIOS,
//     kernel image) which the hypervisor zeroes eagerly before writing.
//
// The module also audits correctness: zeroing a page that already holds
// live data (a hypervisor or virtio write that the protocol failed to
// fence) is recorded as a corruption — the crash scenario of §4.3.2.
package fastiovd

import (
	"sort"
	"time"

	"fastiov/internal/fault"
	"fastiov/internal/hostmem"
	"fastiov/internal/sim"
)

// pageInfo is the second-tier hash table value. The paper stores "detailed
// page information"; the fields we need are the registration time (for age
// statistics) alone — the page index is the key.
type pageInfo struct {
	registered time.Duration
}

// scrubEntry is one deferred page in the scrubber's FIFO.
type scrubEntry struct {
	pid  int
	page int64
}

// Module is one loaded instance of fastiovd.
type Module struct {
	k   *sim.Kernel
	mem *hostmem.Allocator

	// tables is the two-tier hash table: PID -> (HPA page -> info).
	tables map[int]map[int64]pageInfo

	// scrubQueue holds (pid, page) pairs in registration order so the
	// background scrubber drains deterministically (map iteration order
	// would make simulation runs irreproducible). Entries already zeroed
	// via the fault path are skipped when dequeued.
	scrubQueue []scrubEntry

	// inflight tracks pages whose zeroing has been claimed but not yet
	// completed (the zeroer is waiting on memory bandwidth). A concurrent
	// EPT fault on such a page must wait for completion — this is the
	// "notify KVM upon completion" handshake of §5.
	inflight map[int64]*sim.Event

	// released records pids whose tables Release dropped. A zeroing claim
	// unwound after the owner's teardown must not resurrect the table: the
	// pages have returned to the allocator and are re-zeroed for their next
	// owner, so restoring the claim would strand a tracked entry forever
	// (the pid-churn regime, where VMs retire while the scrubber is
	// mid-zero). Registering for the pid again reclaims ownership.
	released map[int]bool

	// RegisterCostPerPage models the bookkeeping insert per deferred page.
	RegisterCostPerPage time.Duration

	// Corruptions counts pages zeroed after live data was written to them —
	// each one would be a guest crash or data-loss bug on real hardware.
	Corruptions int

	// LazyZeroed / ScrubZeroed / InstantZeroed count pages cleared on the
	// EPT-fault path, by the background scrubber, and eagerly for the
	// instant-zeroing list, respectively.
	LazyZeroed    int
	ScrubZeroed   int
	InstantZeroed int

	// Faults, when non-nil, can stall the background scrubber: a failed
	// wake does no zeroing work, and a latency factor stretches the wake
	// interval. Set before StartScrubber.
	Faults *fault.Injector
	// ScrubberStalls counts wakes lost to injected stalls.
	ScrubberStalls int

	// scrubProc is the live scrubber daemon (nil before StartScrubber);
	// scrubInterval and scrubPagesPerPass remember its configuration so
	// CrashDaemon can restart it identically.
	scrubProc         *sim.Proc
	scrubInterval     time.Duration
	scrubPagesPerPass int
	// ScrubberRestarts counts daemon-crash failovers (CrashDaemon calls).
	ScrubberRestarts int
}

// New loads the module.
func New(k *sim.Kernel, mem *hostmem.Allocator) *Module {
	return &Module{
		k:                   k,
		mem:                 mem,
		tables:              make(map[int]map[int64]pageInfo),
		inflight:            make(map[int64]*sim.Event),
		released:            make(map[int]bool),
		RegisterCostPerPage: 120 * time.Nanosecond,
	}
}

// Register defers zeroing for every page of region, owned by microVM pid.
// This replaces eager zeroing in the VFIO DMA-map path; it is the hook
// passed to vfio.MapDMA.
func (m *Module) Register(p *sim.Proc, pid int, region *hostmem.Region) {
	delete(m.released, pid)
	t := m.tables[pid]
	if t == nil {
		t = make(map[int64]pageInfo)
		m.tables[pid] = t
	}
	now := p.Now()
	var n int64
	region.Pages(func(pg int64) {
		t[pg] = pageInfo{registered: now}
		m.scrubQueue = append(m.scrubQueue, scrubEntry{pid: pid, page: pg})
		n++
	})
	if cost := time.Duration(n) * m.RegisterCostPerPage; cost > 0 {
		p.Sleep(cost)
	}
}

// RegisterInstant puts region on the instant-zeroing list: the pages are
// zeroed immediately (charging bandwidth time) and never tracked, because
// the hypervisor is about to write live data (BIOS, kernel) into them.
func (m *Module) RegisterInstant(p *sim.Proc, pid int, region *hostmem.Region) {
	before := m.mem.ZeroedBytes
	m.mem.ZeroRegion(p, region)
	m.InstantZeroed += int((m.mem.ZeroedBytes - before) / m.mem.PageSize())
}

// OnEPTFault is the KVM fault hook (kvm.FaultHook): if the faulting page is
// tracked for pid, zero it now and drop it from the table. If another
// thread (the scrubber) is already zeroing the page, wait for it to finish
// before letting KVM install the EPT entry.
func (m *Module) OnEPTFault(p *sim.Proc, pid int, hpaPage int64) {
	t := m.tables[pid]
	if t != nil {
		if _, ok := t[hpaPage]; ok {
			m.claimAndZero(p, pid, hpaPage)
			m.LazyZeroed++
			return
		}
	}
	if ev, busy := m.inflight[hpaPage]; busy {
		ev.Await(p)
	}
}

// claimAndZero removes the page from the table (claiming it), publishes an
// in-flight marker, performs the zeroing, and signals completion. If the
// zeroing Proc is unwound mid-zero (the scrubber daemon reaped at the end
// of a Run phase), the claim is rolled back so the page is still tracked —
// and still gets zeroed before any later exposure.
func (m *Module) claimAndZero(p *sim.Proc, pid int, hpaPage int64) {
	t := m.tables[pid]
	delete(t, hpaPage)
	if len(t) == 0 {
		delete(m.tables, pid)
	}
	ev := sim.NewEvent(m.k, "fastiovd-zero")
	m.inflight[hpaPage] = ev
	completed := false
	defer func() {
		delete(m.inflight, hpaPage)
		if completed {
			ev.Fire(p)
			return
		}
		// Unwound mid-zero: restore the claim — unless the owner was torn
		// down in the meantime. A released pid's pages are back in the
		// allocator; re-tracking them would strand a table entry forever.
		if m.released[pid] {
			return
		}
		tt := m.tables[pid]
		if tt == nil {
			tt = make(map[int64]pageInfo)
			m.tables[pid] = tt
		}
		tt[hpaPage] = pageInfo{registered: p.Now()}
		m.scrubQueue = append(m.scrubQueue, scrubEntry{pid: pid, page: hpaPage})
	}()
	m.zero(p, hpaPage)
	completed = true
}

// ScrubProc returns the live scrubber daemon (nil before StartScrubber).
func (m *Module) ScrubProc() *sim.Proc { return m.scrubProc }

// CrashDaemon models a fastiovd crash-and-failover (§5's daemon as a
// failure domain of its own): the scrubber thread dies mid-pass and its
// volatile scan state — the FIFO scrub queue — is lost. The two-tier table
// itself survives (it is the persistent registration state), so the new
// daemon instance conservatively rebuilds its queue by walking every
// tracked page in deterministic (pid, page) order, paying the bookkeeping
// insert per page again, and then resumes scrubbing with the original
// configuration. TrackedTotal is unchanged throughout, so the conservation
// audit cannot tell a failover happened — only the telemetry can.
//
// p is the proc driving the crash (the fleet's crash injector), which pays
// the reconstruction cost. No-op if the scrubber was never started.
func (m *Module) CrashDaemon(p *sim.Proc) {
	if m.scrubProc == nil {
		return
	}
	// Kill the daemon. If it is mid-zero, claimAndZero's deferred rollback
	// re-tracks the in-flight page, so nothing is lost — only the queue
	// order it had accumulated.
	m.k.Kill(m.scrubProc)
	m.scrubProc = nil
	// The dying pass may have re-queued its in-flight page; the rebuild
	// below supersedes the old queue entirely.
	m.scrubQueue = m.scrubQueue[:0]
	pids := make([]int, 0, len(m.tables))
	for pid := range m.tables {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var n int64
	for _, pid := range pids {
		t := m.tables[pid]
		pages := make([]int64, 0, len(t))
		for pg := range t {
			pages = append(pages, pg)
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		for _, pg := range pages {
			m.scrubQueue = append(m.scrubQueue, scrubEntry{pid: pid, page: pg})
			n++
		}
	}
	if cost := time.Duration(n) * m.RegisterCostPerPage; cost > 0 {
		p.Sleep(cost)
	}
	m.ScrubberRestarts++
	m.StartScrubber(m.scrubInterval, m.scrubPagesPerPass)
}

// zero clears one page, auditing the crash case: the page must not already
// hold live data (that data would be destroyed).
func (m *Module) zero(p *sim.Proc, hpaPage int64) {
	if m.mem.State(hpaPage) == hostmem.Written {
		m.Corruptions++
	}
	m.mem.ZeroPage(p, hpaPage)
}

// Tracked returns the number of pages still awaiting zeroing for pid.
func (m *Module) Tracked(pid int) int { return len(m.tables[pid]) }

// TrackedTotal returns the table-wide deferred page count.
func (m *Module) TrackedTotal() int {
	n := 0
	for _, t := range m.tables {
		n += len(t)
	}
	return n
}

// ScrubQueueLen returns the length of the background scrub list — the
// deferred pages queued for the scrubber thread, in registration order.
func (m *Module) ScrubQueueLen() int { return len(m.scrubQueue) }

// Release drops pid's table without zeroing (VM teardown: the pages return
// to the allocator dirty and are re-zeroed for their next owner). The pid is
// marked released so an in-flight zeroing claim unwound later does not
// resurrect the table.
func (m *Module) Release(pid int) {
	delete(m.tables, pid)
	m.released[pid] = true
}

// StartScrubber launches the module's background thread (§5): it
// periodically sweeps the two-tier table, zeroing up to pagesPerPass pages
// per wake and removing them, overlapping zeroing with other startup stages.
func (m *Module) StartScrubber(interval time.Duration, pagesPerPass int) {
	m.scrubInterval, m.scrubPagesPerPass = interval, pagesPerPass
	m.scrubProc = m.k.GoDaemon("fastiovd-scrub", func(p *sim.Proc) {
		for {
			p.Sleep(m.Faults.Inflate(fault.SiteScrubber, interval))
			if err := m.Faults.Fail(fault.SiteScrubber); err != nil {
				// Stalled wake: the scrubber thread lost its slice (e.g.
				// preempted by a higher-priority task) and zeroes nothing
				// this pass; deferred pages wait for the next wake or the
				// EPT-fault path.
				m.ScrubberStalls++
				continue
			}
			cleared := 0
			for cleared < pagesPerPass && len(m.scrubQueue) > 0 {
				e := m.scrubQueue[0]
				m.scrubQueue = m.scrubQueue[1:]
				t := m.tables[e.pid]
				if t == nil {
					continue
				}
				if _, ok := t[e.page]; !ok {
					continue // already zeroed on the fault path
				}
				m.claimAndZero(p, e.pid, e.page)
				m.ScrubZeroed++
				cleared++
			}
		}
	})
}
