package telemetry

import (
	"strings"
	"testing"
	"time"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func TestTotals(t *testing.T) {
	r := NewRecorder()
	r.MarkStart(0, 0)
	r.MarkEnd(0, sec(2))
	r.MarkStart(1, sec(1))
	r.MarkEnd(1, sec(4))
	totals := r.Totals()
	if totals.N() != 2 {
		t.Fatalf("n = %d", totals.N())
	}
	if totals.Mean() != sec(2.5) {
		t.Errorf("mean = %v, want 2.5s", totals.Mean())
	}
}

func TestIncompleteContainerExcluded(t *testing.T) {
	r := NewRecorder()
	r.MarkStart(0, 0)
	r.MarkEnd(0, sec(1))
	r.MarkStart(1, 0) // never ends
	if r.Totals().N() != 1 {
		t.Error("incomplete container should be excluded from totals")
	}
	if r.Total(1) != 0 {
		t.Error("incomplete total should be 0")
	}
}

func TestStageTimeSumsSpans(t *testing.T) {
	r := NewRecorder()
	r.Record(0, StageVFIODev, sec(0), sec(1))
	r.Record(0, StageVFIODev, sec(2), sec(2.5))
	r.Record(0, StageDMARAM, sec(1), sec(2))
	if got := r.StageTime(0, StageVFIODev); got != sec(1.5) {
		t.Errorf("vfio-dev time = %v, want 1.5s", got)
	}
	if got := r.StageTime(0, StageDMARAM); got != sec(1) {
		t.Errorf("dma-ram time = %v, want 1s", got)
	}
}

func TestNegativeSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRecorder().Record(0, StageCgroup, sec(2), sec(1))
}

func TestVFRelatedClassification(t *testing.T) {
	vf := []Stage{StageDMARAM, StageDMAImage, StageVFIODev, StageVFDriver}
	nonVF := []Stage{StageCgroup, StageVirtioFS, StageAddCNI, StageOther}
	for _, s := range vf {
		if !s.VFRelated() {
			t.Errorf("%s should be VF-related", s)
		}
	}
	for _, s := range nonVF {
		if s.VFRelated() {
			t.Errorf("%s should not be VF-related", s)
		}
	}
}

func TestVFRelatedTime(t *testing.T) {
	r := NewRecorder()
	r.Record(0, StageVFIODev, 0, sec(1))
	r.Record(0, StageDMARAM, sec(1), sec(2))
	r.Record(0, StageCgroup, sec(2), sec(3))
	if got := r.VFRelatedTime(0); got != sec(2) {
		t.Errorf("VF-related = %v, want 2s", got)
	}
}

func TestByStage(t *testing.T) {
	r := NewRecorder()
	r.MarkStart(0, 0)
	r.MarkEnd(0, sec(3))
	r.MarkStart(1, 0)
	r.MarkEnd(1, sec(3))
	r.Record(0, StageVFIODev, 0, sec(2))
	// container 1 has no vfio span: must contribute 0, not be skipped
	by := r.ByStage()
	s := by[StageVFIODev]
	if s.N() != 2 {
		t.Fatalf("n = %d, want 2", s.N())
	}
	if s.Mean() != sec(1) {
		t.Errorf("mean = %v, want 1s", s.Mean())
	}
}

func TestBreakdownProportions(t *testing.T) {
	r := NewRecorder()
	// 10 identical containers: total 10s each, vfio 4s, dma-ram 2s.
	for i := 0; i < 10; i++ {
		r.MarkStart(i, 0)
		r.MarkEnd(i, sec(10))
		r.Record(i, StageVFIODev, 0, sec(4))
		r.Record(i, StageDMARAM, sec(4), sec(6))
	}
	rows := r.Breakdown([]Stage{StageVFIODev, StageDMARAM})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].PropAvg < 39.9 || rows[0].PropAvg > 40.1 {
		t.Errorf("vfio prop = %v, want 40%%", rows[0].PropAvg)
	}
	if rows[1].PropAvg < 19.9 || rows[1].PropAvg > 20.1 {
		t.Errorf("dma prop = %v, want 20%%", rows[1].PropAvg)
	}
	// identical containers: p99 proportions equal avg proportions
	if rows[0].PropP99 < 39.9 || rows[0].PropP99 > 40.1 {
		t.Errorf("vfio p99 prop = %v, want 40%%", rows[0].PropP99)
	}
}

func TestBreakdownTailHeavier(t *testing.T) {
	r := NewRecorder()
	// 99 fast containers with small vfio share; 1 slow container dominated
	// by vfio. The p99 proportion must exceed the average proportion.
	for i := 0; i < 99; i++ {
		r.MarkStart(i, 0)
		r.MarkEnd(i, sec(2))
		r.Record(i, StageVFIODev, 0, sec(0.5))
	}
	r.MarkStart(99, 0)
	r.MarkEnd(99, sec(20))
	r.Record(99, StageVFIODev, 0, sec(18))
	rows := r.Breakdown([]Stage{StageVFIODev})
	if rows[0].PropP99 <= rows[0].PropAvg {
		t.Errorf("p99 prop %v should exceed avg prop %v", rows[0].PropP99, rows[0].PropAvg)
	}
}

func TestBreakdownTableContainsTotalRow(t *testing.T) {
	r := NewRecorder()
	r.MarkStart(0, 0)
	r.MarkEnd(0, sec(10))
	r.Record(0, StageVFIODev, 0, sec(5))
	out := r.BreakdownTable([]Stage{StageVFIODev}).String()
	if !strings.Contains(out, "Total (1,3,4,5)") {
		t.Errorf("missing total row:\n%s", out)
	}
	if !strings.Contains(out, "4-vfio-dev") {
		t.Errorf("missing stage row:\n%s", out)
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 5; i++ {
		r.MarkStart(i, sec(float64(i)))
		r.MarkEnd(i, sec(float64(i)+2))
		r.Record(i, StageVFIODev, sec(float64(i)), sec(float64(i)+1))
	}
	out := r.Timeline(80, 10)
	if !strings.Contains(out, "ctr0") || !strings.Contains(out, "4") {
		t.Errorf("timeline output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5 rows
		t.Errorf("want 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	r := NewRecorder()
	if out := r.Timeline(80, 10); !strings.Contains(out, "no containers") {
		t.Errorf("empty timeline: %q", out)
	}
}

func TestTimelineSampling(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.MarkStart(i, 0)
		r.MarkEnd(i, sec(1))
	}
	out := r.Timeline(40, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) > 12 {
		t.Errorf("sampling failed: %d lines", len(lines))
	}
}

// TestTimelineHalfOpenBoundaries is the regression test for the span
// rounding bug: with inclusive end columns (col(sp.End)), two adjacent
// stages both owned the boundary column and whichever was recorded later
// clobbered the other's closing glyph. Half-open drawing gives every column
// to exactly one span, so the rendering is independent of recording order.
func TestTimelineHalfOpenBoundaries(t *testing.T) {
	render := func(firstCgroup bool) string {
		r := NewRecorder()
		r.MarkStart(0, 0)
		r.MarkEnd(0, sec(100))
		// Boundary at 45s falls inside column 9 of 20: the columns split
		// [0,9) / [9,20) only under half-open drawing.
		if firstCgroup {
			r.Record(0, StageCgroup, 0, sec(45))
			r.Record(0, StageDMARAM, sec(45), sec(100))
		} else {
			r.Record(0, StageDMARAM, sec(45), sec(100))
			r.Record(0, StageCgroup, 0, sec(45))
		}
		return r.Timeline(20, 10)
	}
	a, b := render(true), render(false)
	if a != b {
		t.Errorf("rendering depends on span recording order:\n--- cgroup first ---\n%s--- dma-ram first ---\n%s", a, b)
	}
	row := a[strings.Index(a, "|")+1 : strings.LastIndex(a, "|")]
	want := strings.Repeat("0", 9) + strings.Repeat("1", 11)
	if row != want {
		t.Errorf("boundary column clobbered:\ngot  |%s|\nwant |%s|", row, want)
	}
}

// TestTimelineSubColumnSpanVisible pins the half-open fix's deliberate
// exception: a span narrower than one column still draws a single glyph.
func TestTimelineSubColumnSpanVisible(t *testing.T) {
	r := NewRecorder()
	r.MarkStart(0, 0)
	r.MarkEnd(0, sec(100))
	r.Record(0, StageVFIODev, sec(50), sec(50.1))
	out := r.Timeline(20, 10)
	if !strings.Contains(out, "4") {
		t.Errorf("sub-column span vanished:\n%s", out)
	}
}
