// Package telemetry is the reproduction of the paper's fine-grained logging
// tool (§3.1): it records per-container, per-stage spans during concurrent
// startup runs and renders them as the breakdown table (Tab. 1), the
// timeline figure (Fig. 5), and CDFs (Fig. 12).
//
// Recording is free of real synchronization because the simulation kernel
// guarantees only one simulated thread executes at a time; the paper's tool
// similarly takes care to be asynchronous so that logging does not perturb
// the measured startup times.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fastiov/internal/stats"
)

// Stage identifies one of the time-consuming startup steps. Names follow the
// paper's Fig. 5 legend.
type Stage string

// The stage classes of the paper's breakdown, plus internal ones used by
// finer-grained analyses.
const (
	StageCgroup   Stage = "0-cgroup"
	StageDMARAM   Stage = "1-dma-ram"
	StageVirtioFS Stage = "2-virtiofs"
	StageDMAImage Stage = "3-dma-image"
	StageVFIODev  Stage = "4-vfio-dev"
	StageVFDriver Stage = "5-vf-driver"
	StageAddCNI   Stage = "6-add-cni" // software-CNI device creation (Fig. 14)
	StageRetry    Stage = "7-retry"    // backoff waits spent retrying injected faults
	StageRollback Stage = "8-rollback" // compensating rollback after a failed startup
	StageOther    Stage = "other"
)

// VFRelated reports whether a stage is one of the four VF-related steps
// whose share the paper tracks (Tab. 1: steps 1, 3, 4, 5).
func (s Stage) VFRelated() bool {
	switch s {
	case StageDMARAM, StageDMAImage, StageVFIODev, StageVFDriver:
		return true
	}
	return false
}

// Span is one recorded interval of a stage within one container's startup.
type Span struct {
	Container int
	Stage     Stage
	Start     time.Duration
	End       time.Duration
}

// Dur returns the span length.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Recorder accumulates spans and per-container start/finish marks.
type Recorder struct {
	spans  []Span
	starts map[int]time.Duration
	ends   map[int]time.Duration
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		starts: make(map[int]time.Duration),
		ends:   make(map[int]time.Duration),
	}
}

// Record adds a completed span.
func (r *Recorder) Record(container int, stage Stage, start, end time.Duration) {
	if end < start {
		panic(fmt.Sprintf("telemetry: span ends before it starts: %v < %v", end, start))
	}
	r.spans = append(r.spans, Span{Container: container, Stage: stage, Start: start, End: end})
}

// MarkStart records the issuance time of a container's startup command.
func (r *Recorder) MarkStart(container int, at time.Duration) { r.starts[container] = at }

// MarkEnd records a container's startup completion time.
func (r *Recorder) MarkEnd(container int, at time.Duration) { r.ends[container] = at }

// Spans returns all recorded spans (not a copy).
func (r *Recorder) Spans() []Span { return r.spans }

// Containers returns the sorted ids of containers with a recorded start.
func (r *Recorder) Containers() []int {
	ids := make([]int, 0, len(r.starts))
	for id := range r.starts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Start returns container id's recorded start mark.
func (r *Recorder) Start(container int) (time.Duration, bool) {
	s, ok := r.starts[container]
	return s, ok
}

// End returns container id's recorded completion mark.
func (r *Recorder) End(container int) (time.Duration, bool) {
	e, ok := r.ends[container]
	return e, ok
}

// Total returns container id's end-to-end startup time, or 0 if incomplete.
func (r *Recorder) Total(container int) time.Duration {
	s, okS := r.starts[container]
	e, okE := r.ends[container]
	if !okS || !okE {
		return 0
	}
	return e - s
}

// Totals returns the sample of end-to-end startup times across containers.
func (r *Recorder) Totals() *stats.Sample {
	s := stats.NewSample()
	for _, id := range r.Containers() {
		if t := r.Total(id); t > 0 {
			s.Add(t)
		}
	}
	return s
}

// AppendCanonical appends a canonical byte encoding of every recorded mark
// and span to b and returns the extended slice. The encoding is a pure
// function of the recorder's contents (marks ordered by container id, spans
// in recording order), so two runs of the same seeded simulation must
// produce identical bytes — the property the harness's determinism
// verification checks. Recorders are per-run: each simulated host owns its
// own, and fingerprinting one run never observes another's spans.
func (r *Recorder) AppendCanonical(b []byte) []byte {
	for _, id := range r.Containers() {
		b = fmt.Appendf(b, "ctr %d start=%d", id, r.starts[id])
		if e, ok := r.ends[id]; ok {
			b = fmt.Appendf(b, " end=%d", e)
		}
		b = append(b, '\n')
	}
	for _, sp := range r.spans {
		b = fmt.Appendf(b, "span %d %s %d %d\n", sp.Container, sp.Stage, sp.Start, sp.End)
	}
	return b
}

// StageTime returns the summed span time of stage within container id.
func (r *Recorder) StageTime(container int, stage Stage) time.Duration {
	var total time.Duration
	for _, sp := range r.spans {
		if sp.Container == container && sp.Stage == stage {
			total += sp.Dur()
		}
	}
	return total
}

// ByStage returns, for each stage, the sample of per-container stage times.
func (r *Recorder) ByStage() map[Stage]*stats.Sample {
	perCtr := make(map[Stage]map[int]time.Duration)
	for _, sp := range r.spans {
		m := perCtr[sp.Stage]
		if m == nil {
			m = make(map[int]time.Duration)
			perCtr[sp.Stage] = m
		}
		m[sp.Container] += sp.Dur()
	}
	out := make(map[Stage]*stats.Sample, len(perCtr))
	for st, m := range perCtr {
		s := stats.NewSample()
		for _, id := range r.Containers() {
			s.Add(m[id]) // containers without the stage contribute 0
		}
		out[st] = s
	}
	return out
}

// VFRelatedTime returns the summed VF-related stage time for container id.
func (r *Recorder) VFRelatedTime(container int) time.Duration {
	var total time.Duration
	for _, sp := range r.spans {
		if sp.Container == container && sp.Stage.VFRelated() {
			total += sp.Dur()
		}
	}
	return total
}

// StageRow is one row of the Tab. 1 reproduction.
type StageRow struct {
	Stage    Stage
	MeanTime time.Duration
	PropAvg  float64 // proportion in average startup time (%)
	PropP99  float64 // proportion in 99th-percentile startup time (%)
}

// Breakdown reproduces Tab. 1: the proportion each stage contributes to the
// average startup time and to the 99th-percentile startup time. The p99
// column is computed over the containers whose total time is at or above the
// p99 threshold, matching the paper's long-tail framing.
func (r *Recorder) Breakdown(stages []Stage) []StageRow {
	totals := r.Totals()
	meanTotal := totals.Mean()
	p99 := totals.Percentile(99)

	var tailIDs []int
	for _, id := range r.Containers() {
		if r.Total(id) >= p99 && r.Total(id) > 0 {
			tailIDs = append(tailIDs, id)
		}
	}

	rows := make([]StageRow, 0, len(stages))
	for _, st := range stages {
		var sumAll, sumTail time.Duration
		n := 0
		for _, id := range r.Containers() {
			if r.Total(id) == 0 {
				continue
			}
			sumAll += r.StageTime(id, st)
			n++
		}
		for _, id := range tailIDs {
			sumTail += r.StageTime(id, st)
		}
		row := StageRow{Stage: st}
		if n > 0 {
			row.MeanTime = sumAll / time.Duration(n)
		}
		if meanTotal > 0 && n > 0 {
			row.PropAvg = 100 * float64(sumAll/time.Duration(n)) / float64(meanTotal)
		}
		if p99 > 0 && len(tailIDs) > 0 {
			meanTail := sumTail / time.Duration(len(tailIDs))
			row.PropP99 = 100 * float64(meanTail) / float64(p99)
		}
		rows = append(rows, row)
	}
	return rows
}

// BreakdownTable renders Breakdown as an aligned table (Tab. 1 format).
func (r *Recorder) BreakdownTable(stages []Stage) *stats.Table {
	t := stats.NewTable("Step", "Mean Time", "Prop. Avg (%)", "Prop. P99 (%)")
	var vfAvg, vfP99 float64
	for _, row := range r.Breakdown(stages) {
		t.AddRow(string(row.Stage), row.MeanTime, row.PropAvg, row.PropP99)
		if row.Stage.VFRelated() {
			vfAvg += row.PropAvg
			vfP99 += row.PropP99
		}
	}
	t.AddRow("Total (1,3,4,5)", time.Duration(0), vfAvg, vfP99)
	return t
}

// timelineGlyphs maps stages to the letters used in the ASCII Gantt chart.
var timelineGlyphs = map[Stage]byte{
	StageCgroup:   '0',
	StageDMARAM:   '1',
	StageVirtioFS: '2',
	StageDMAImage: '3',
	StageVFIODev:  '4',
	StageVFDriver: '5',
	StageAddCNI:   '6',
	StageRetry:    '7',
	StageRollback: '8',
	StageOther:    '.',
}

// Timeline renders a Fig. 5-style ASCII Gantt chart: one row per container
// (sampled down to maxRows), columns spanning [0, makespan], each stage
// drawn with its digit. Useful for eyeballing where serialization happens.
func (r *Recorder) Timeline(width, maxRows int) string {
	ids := r.Containers()
	if len(ids) == 0 {
		return "(no containers recorded)\n"
	}
	var makespan time.Duration
	for _, id := range ids {
		if e, ok := r.ends[id]; ok && e > makespan {
			makespan = e
		}
	}
	if makespan == 0 {
		return "(no completed containers)\n"
	}
	if width < 20 {
		width = 20
	}
	step := len(ids) / maxRows
	if step < 1 {
		step = 1
	}
	col := func(t time.Duration) int {
		c := int(int64(t) * int64(width) / int64(makespan))
		if c >= width {
			c = width - 1
		}
		return c
	}
	// colEnd is the exclusive column bound of a span end: unclamped, so a
	// span ending at the makespan owns the final column.
	colEnd := func(t time.Duration) int {
		return int(int64(t) * int64(width) / int64(makespan))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d containers, makespan %v, '·'=waiting\n", len(ids), makespan.Round(time.Millisecond))
	for i := 0; i < len(ids); i += step {
		id := ids[i]
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		if s, ok := r.starts[id]; ok {
			e, okE := r.ends[id]
			if !okE {
				e = makespan
			}
			for j := col(s); j <= col(e) && j < width; j++ {
				row[j] = '-'
			}
		}
		for _, sp := range r.spans {
			if sp.Container != id {
				continue
			}
			g, ok := timelineGlyphs[sp.Stage]
			if !ok {
				g = '?'
			}
			// Half-open drawing: a span owns [col(Start), col(End)), so
			// adjacent stages never clobber each other's closing column
			// regardless of recording order. Sub-column spans keep one
			// glyph so short stages stay visible.
			lo, hi := col(sp.Start), colEnd(sp.End)
			if hi <= lo {
				hi = lo + 1
			}
			for j := lo; j < hi && j < width; j++ {
				row[j] = g
			}
		}
		fmt.Fprintf(&b, "ctr%-4d |%s|\n", id, string(row))
	}
	return b.String()
}
