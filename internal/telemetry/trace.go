package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// traceEvent is one Chrome trace-event ("Trace Event Format") record.
// Complete events (ph="X") carry their duration inline.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the JSON-object envelope Perfetto and chrome://tracing both
// accept.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorded spans in Chrome trace-event format:
// one track (tid) per container, one complete event per span, plus a
// "startup" umbrella event spanning MarkStart..MarkEnd. The output loads
// directly into chrome://tracing or https://ui.perfetto.dev, giving the
// interactive version of the paper's Fig. 5.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	var events []traceEvent
	for _, id := range r.Containers() {
		start, okS := r.starts[id]
		end, okE := r.ends[id]
		if okS && okE {
			events = append(events, traceEvent{
				Name: "startup",
				Cat:  "container",
				Ph:   "X",
				TS:   start.Microseconds(),
				Dur:  (end - start).Microseconds(),
				PID:  1,
				TID:  id,
				Args: map[string]string{"total": (end - start).Round(time.Millisecond).String()},
			})
		}
	}
	for _, sp := range r.spans {
		cat := "other"
		if sp.Stage.VFRelated() {
			cat = "vf-related"
		}
		events = append(events, traceEvent{
			Name: string(sp.Stage),
			Cat:  cat,
			Ph:   "X",
			TS:   sp.Start.Microseconds(),
			Dur:  sp.Dur().Microseconds(),
			PID:  1,
			TID:  sp.Container,
		})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].TS < events[j].TS
	})
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
