package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder()
	r.MarkStart(0, 0)
	r.MarkEnd(0, 2*time.Second)
	r.Record(0, StageVFIODev, 100*time.Millisecond, 1500*time.Millisecond)
	r.Record(0, StageCgroup, 0, 50*time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("time unit %q", parsed.DisplayTimeUnit)
	}
	if len(parsed.TraceEvents) != 3 { // startup + 2 spans
		t.Fatalf("events = %d, want 3", len(parsed.TraceEvents))
	}
	byName := map[string]int{}
	for _, e := range parsed.TraceEvents {
		byName[e.Name]++
		if e.Ph != "X" {
			t.Errorf("event %s phase %q", e.Name, e.Ph)
		}
	}
	if byName["startup"] != 1 || byName["4-vfio-dev"] != 1 || byName["0-cgroup"] != 1 {
		t.Errorf("events: %v", byName)
	}
	for _, e := range parsed.TraceEvents {
		if e.Name == "4-vfio-dev" {
			if e.Cat != "vf-related" {
				t.Errorf("vfio cat = %q", e.Cat)
			}
			if e.TS != 100_000 || e.Dur != 1_400_000 {
				t.Errorf("vfio ts/dur = %d/%d", e.TS, e.Dur)
			}
		}
	}
}

func TestChromeTraceIncompleteContainer(t *testing.T) {
	r := NewRecorder()
	r.MarkStart(0, 0) // never ends
	r.Record(0, StageCgroup, 0, time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	events := parsed["traceEvents"].([]any)
	if len(events) != 1 { // span only; no umbrella for incomplete startup
		t.Errorf("events = %d, want 1", len(events))
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("invalid JSON for empty recorder")
	}
}
