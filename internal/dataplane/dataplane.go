// Package dataplane models the packet receive path of §2.2 for both
// network solutions the paper compares, quantifying the premise behind the
// whole work (§1): SR-IOV passthrough delivers near-bare-metal data-plane
// performance, while software CNIs pay a per-packet host-kernel tax.
//
// Passthrough RX (§2.2's four-step walk-through): the NIC's DMA engine
// translates the IOVA through the IOMMU and writes the packet directly
// into guest memory; only the completion interrupt is relayed through the
// hypervisor, and interrupt coalescing amortizes that relay over a batch.
//
// Software-CNI RX (ipvtap/virtio): the packet traverses the host kernel
// network stack, is copied into a shared vring buffer by the vhost worker,
// and the guest is notified — per-packet CPU work and an extra copy that
// passthrough avoids.
package dataplane

import (
	"fmt"
	"time"

	"fastiov/internal/hostmem"
	"fastiov/internal/iommu"
	"fastiov/internal/kvm"
	"fastiov/internal/nic"
	"fastiov/internal/sim"
	"fastiov/internal/stats"
)

// Costs parameterizes the per-packet path models. Defaults approximate a
// 25 GbE NIC with NAPI-style coalescing and a single-queue virtio path.
type Costs struct {
	// IOMMULookup is the IOTLB-hit translation cost per DMA descriptor.
	IOMMULookup time.Duration
	// IrqInject is the hypervisor's interrupt-relay (irqfd) cost.
	IrqInject time.Duration
	// CoalesceBatch is the packets amortizing one interrupt.
	CoalesceBatch int
	// GuestRxWork is the guest driver's per-packet processing.
	GuestRxWork time.Duration
	// HostStackWork is the host kernel network-stack cost per packet on
	// the software path.
	HostStackWork time.Duration
	// VhostCopyBytesPerSec is the vhost worker's copy rate into the vring.
	VhostCopyBytesPerSec int64
	// VringKick is the guest-notify cost per batch on the virtio path.
	VringKick time.Duration
}

// DefaultCosts returns the calibrated model.
func DefaultCosts() Costs {
	return Costs{
		IOMMULookup:          120 * time.Nanosecond,
		IrqInject:            2 * time.Microsecond,
		CoalesceBatch:        32,
		GuestRxWork:          600 * time.Nanosecond,
		HostStackWork:        2500 * time.Nanosecond,
		VhostCopyBytesPerSec: 12 << 30,
		VringKick:            1500 * time.Nanosecond,
	}
}

// Result reports one streaming run.
type Result struct {
	Packets    int
	Bytes      int64
	Elapsed    time.Duration
	Throughput float64 // Gbit/s
	LatP50     time.Duration
	LatP99     time.Duration
}

func newResult(n int, bytes int64, elapsed time.Duration, lat *stats.Sample) Result {
	r := Result{Packets: n, Bytes: bytes, Elapsed: elapsed}
	if elapsed > 0 {
		r.Throughput = float64(bytes*8) / elapsed.Seconds() / 1e9
	}
	r.LatP50 = lat.P50()
	r.LatP99 = lat.P99()
	return r
}

// Passthrough streams packets through the SR-IOV path into a VM whose RX
// window is DMA-mapped at iovaBase. Every page the NIC writes must already
// be translated — an IOMMU fault aborts the run, which is exactly why the
// startup path must map everything up front (§3.2.3).
type Passthrough struct {
	NIC    *nic.NIC
	Domain *iommu.Domain
	Mem    *hostmem.Allocator
	VM     *kvm.VM
	Costs  Costs
}

// Stream receives n packets of size bytes each, returning throughput and
// per-packet latency statistics.
func (pt *Passthrough) Stream(p *sim.Proc, n int, size int64, iovaBase, window int64) (Result, error) {
	if window < size {
		return Result{}, fmt.Errorf("dataplane: window %d smaller than packet %d", window, size)
	}
	lat := stats.NewSample()
	start := p.Now()
	cursor := int64(0)
	for i := 0; i < n; i++ {
		pktStart := p.Now()
		if cursor+size > window {
			cursor = 0
		}
		// DMA engine: IOTLB lookup + direct write to guest memory.
		p.Sleep(pt.Costs.IOMMULookup)
		if err := pt.NIC.DMAWrite(p, pt.Domain, pt.Mem, iovaBase+cursor, size); err != nil {
			return Result{}, err
		}
		cursor += size
		// Interrupt relay, amortized over the coalescing batch.
		if pt.Costs.CoalesceBatch <= 1 || i%pt.Costs.CoalesceBatch == 0 {
			p.Sleep(pt.Costs.IrqInject)
		}
		// Guest driver consumes the packet (EPT hits after warmup).
		if err := pt.VM.Touch(p, iovaBase+cursor-size, false); err != nil {
			return Result{}, err
		}
		p.Sleep(pt.Costs.GuestRxWork)
		lat.Add(p.Now() - pktStart)
	}
	return newResult(n, int64(n)*size, p.Now()-start, lat), nil
}

// Virtio streams packets through the software-CNI path: host stack →
// vhost copy into the vring → notify → guest.
type Virtio struct {
	Mem   *hostmem.Allocator
	VM    *kvm.VM
	Costs Costs
}

// Stream receives n packets of size bytes each through the vring at
// gpaBase (window bytes of guest buffer).
func (v *Virtio) Stream(p *sim.Proc, n int, size int64, gpaBase, window int64) (Result, error) {
	if window < size {
		return Result{}, fmt.Errorf("dataplane: window %d smaller than packet %d", window, size)
	}
	lat := stats.NewSample()
	start := p.Now()
	cursor := int64(0)
	for i := 0; i < n; i++ {
		pktStart := p.Now()
		if cursor+size > window {
			cursor = 0
		}
		// Host kernel stack processes the packet.
		p.Sleep(v.Costs.HostStackWork)
		// vhost worker copies payload into the shared buffer.
		p.Sleep(time.Duration(size * int64(time.Second) / v.Costs.VhostCopyBytesPerSec))
		if err := v.VM.HostWrite(p, gpaBase+cursor, size); err != nil {
			return Result{}, err
		}
		// Notify + guest consumes.
		if v.Costs.CoalesceBatch <= 1 || i%v.Costs.CoalesceBatch == 0 {
			p.Sleep(v.Costs.VringKick + v.Costs.IrqInject)
		}
		if err := v.VM.Touch(p, gpaBase+cursor, false); err != nil {
			return Result{}, err
		}
		p.Sleep(v.Costs.GuestRxWork)
		cursor += size
		lat.Add(p.Now() - pktStart)
	}
	return newResult(n, int64(n)*size, p.Now()-start, lat), nil
}
