package dataplane

import (
	"testing"

	"fastiov/internal/hostmem"
	"fastiov/internal/iommu"
	"fastiov/internal/kvm"
	"fastiov/internal/nic"
	"fastiov/internal/pci"
	"fastiov/internal/sim"
	"fastiov/internal/vfio"
)

const mb = int64(1) << 20

type rig struct {
	k   *sim.Kernel
	mem *hostmem.Allocator
	vm  *kvm.VM
	dom *iommu.Domain
	nic *nic.NIC
}

// newRig builds a VM with a 32 MB DMA-mapped RX window at IOVA/GPA 0.
func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	cfg := hostmem.DefaultConfig()
	cfg.TotalBytes = 2 << 30
	mem := hostmem.New(k, cfg)
	topo := pci.NewTopology()
	card := nic.New(k, topo, nic.DefaultConfig())
	if err := card.CreateVFs(nil, 1, topo); err != nil {
		t.Fatal(err)
	}
	drv := vfio.New(k, topo, mem, iommu.New(k, mem.PageSize()), vfio.LockParentChild, vfio.DefaultCosts())
	vf := card.VFs()[0]
	vf.Dev.BindBoot("vfio-pci")
	vd, err := drv.Register(vf.Dev)
	if err != nil {
		t.Fatal(err)
	}
	kv := kvm.New(k, mem)
	vm := kv.CreateVM()
	r := &rig{k: k, mem: mem, vm: vm, nic: card}
	k.Go("setup", func(p *sim.Proc) {
		drv.Open(p, vd)
		region, err := drv.MapDMA(p, vd, 0, 32*mb, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := vm.AddSlot("rx", 0, 32*mb, region); err != nil {
			t.Error(err)
		}
		r.dom = vd.Domain()
	})
	k.Run()
	return r
}

func TestPassthroughStream(t *testing.T) {
	r := newRig(t)
	var res Result
	r.k.Go("rx", func(p *sim.Proc) {
		pt := &Passthrough{NIC: r.nic, Domain: r.dom, Mem: r.mem, VM: r.vm, Costs: DefaultCosts()}
		var err error
		res, err = pt.Stream(p, 10000, 1500, 0, 32*mb)
		if err != nil {
			t.Error(err)
		}
	})
	r.k.Run()
	if res.Packets != 10000 {
		t.Fatalf("packets = %d", res.Packets)
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
	if res.LatP99 < res.LatP50 {
		t.Error("p99 < p50")
	}
	if r.mem.Violations != 0 {
		t.Errorf("violations = %d", r.mem.Violations)
	}
}

func TestPassthroughFaultsOutsideWindow(t *testing.T) {
	r := newRig(t)
	r.k.Go("rx", func(p *sim.Proc) {
		pt := &Passthrough{NIC: r.nic, Domain: r.dom, Mem: r.mem, VM: r.vm, Costs: DefaultCosts()}
		// IOVA base beyond the mapped 32 MB: IOMMU fault.
		if _, err := pt.Stream(p, 1, 1500, 64*mb, 32*mb); err == nil {
			t.Error("DMA outside mapping should fault")
		}
	})
	r.k.Run()
}

func TestWindowSmallerThanPacketRejected(t *testing.T) {
	r := newRig(t)
	r.k.Go("rx", func(p *sim.Proc) {
		pt := &Passthrough{NIC: r.nic, Domain: r.dom, Mem: r.mem, VM: r.vm, Costs: DefaultCosts()}
		if _, err := pt.Stream(p, 1, 9000, 0, 1500); err == nil {
			t.Error("tiny window accepted")
		}
		vr := &Virtio{Mem: r.mem, VM: r.vm, Costs: DefaultCosts()}
		if _, err := vr.Stream(p, 1, 9000, 0, 1500); err == nil {
			t.Error("tiny window accepted (virtio)")
		}
	})
	r.k.Run()
}

func TestVirtioStream(t *testing.T) {
	r := newRig(t)
	var res Result
	r.k.Go("rx", func(p *sim.Proc) {
		vr := &Virtio{Mem: r.mem, VM: r.vm, Costs: DefaultCosts()}
		var err error
		res, err = vr.Stream(p, 10000, 1500, 0, 32*mb)
		if err != nil {
			t.Error(err)
		}
	})
	r.k.Run()
	if res.Packets != 10000 || res.Throughput <= 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPassthroughBeatsVirtio(t *testing.T) {
	// The paper's premise (§1): passthrough throughput and latency beat
	// the software path.
	r := newRig(t)
	var ptRes, vRes Result
	r.k.Go("rx", func(p *sim.Proc) {
		pt := &Passthrough{NIC: r.nic, Domain: r.dom, Mem: r.mem, VM: r.vm, Costs: DefaultCosts()}
		var err error
		ptRes, err = pt.Stream(p, 20000, 1500, 0, 32*mb)
		if err != nil {
			t.Error(err)
			return
		}
		vr := &Virtio{Mem: r.mem, VM: r.vm, Costs: DefaultCosts()}
		vRes, err = vr.Stream(p, 20000, 1500, 0, 32*mb)
		if err != nil {
			t.Error(err)
		}
	})
	r.k.Run()
	if ptRes.Throughput <= vRes.Throughput {
		t.Errorf("passthrough (%.2f Gbps) should beat virtio (%.2f Gbps)", ptRes.Throughput, vRes.Throughput)
	}
	if ptRes.LatP50 >= vRes.LatP50 {
		t.Errorf("passthrough p50 (%v) should beat virtio (%v)", ptRes.LatP50, vRes.LatP50)
	}
}

func TestCoalescingImprovesThroughput(t *testing.T) {
	r := newRig(t)
	var coalesced, perPacket Result
	r.k.Go("rx", func(p *sim.Proc) {
		costs := DefaultCosts()
		pt := &Passthrough{NIC: r.nic, Domain: r.dom, Mem: r.mem, VM: r.vm, Costs: costs}
		var err error
		coalesced, err = pt.Stream(p, 10000, 1500, 0, 32*mb)
		if err != nil {
			t.Error(err)
			return
		}
		costs.CoalesceBatch = 1
		pt.Costs = costs
		perPacket, err = pt.Stream(p, 10000, 1500, 0, 32*mb)
		if err != nil {
			t.Error(err)
		}
	})
	r.k.Run()
	if coalesced.Throughput <= perPacket.Throughput {
		t.Errorf("coalescing (%.2f) should beat per-packet irqs (%.2f)",
			coalesced.Throughput, perPacket.Throughput)
	}
}
