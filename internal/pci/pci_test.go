package pci

import (
	"testing"
	"time"

	"fastiov/internal/sim"
)

func TestTopologyAddLookup(t *testing.T) {
	topo := NewTopology()
	d := topo.AddDevice(&Device{Addr: BDF{Bus: 3, Dev: 1, Fn: 0}, Name: "nic"})
	got, ok := topo.Lookup(BDF{Bus: 3, Dev: 1, Fn: 0})
	if !ok || got != d {
		t.Fatal("lookup failed")
	}
	if d.Bus().Number != 3 {
		t.Errorf("bus = %d", d.Bus().Number)
	}
	if _, ok := topo.Lookup(BDF{Bus: 9}); ok {
		t.Error("lookup of absent device succeeded")
	}
}

func TestDuplicateBDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	topo := NewTopology()
	topo.AddDevice(&Device{Addr: BDF{Bus: 1}})
	topo.AddDevice(&Device{Addr: BDF{Bus: 1}})
}

func TestBusGroupsDevices(t *testing.T) {
	topo := NewTopology()
	for i := 0; i < 5; i++ {
		topo.AddDevice(&Device{Addr: BDF{Bus: 7, Dev: i}})
	}
	topo.AddDevice(&Device{Addr: BDF{Bus: 8, Dev: 0}})
	bus := topo.AddBus(7)
	if len(bus.Devices()) != 5 {
		t.Errorf("bus 7 has %d devices, want 5", len(bus.Devices()))
	}
	if len(topo.Buses()) != 2 {
		t.Errorf("buses = %d, want 2", len(topo.Buses()))
	}
}

func TestBindUnbindLifecycle(t *testing.T) {
	k := sim.NewKernel(1)
	topo := NewTopology()
	d := topo.AddDevice(&Device{Addr: BDF{Bus: 1}})
	k.Go("t", func(p *sim.Proc) {
		d.Bind(p, "vfio-pci", time.Millisecond)
		if d.Driver() != "vfio-pci" {
			t.Errorf("driver = %q", d.Driver())
		}
		if p.Now() != time.Millisecond {
			t.Errorf("bind cost not charged: %v", p.Now())
		}
		d.Unbind(p, time.Millisecond)
		if d.Driver() != "" {
			t.Errorf("driver after unbind = %q", d.Driver())
		}
	})
	k.Run()
}

func TestDoubleBindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	k := sim.NewKernel(1)
	topo := NewTopology()
	d := topo.AddDevice(&Device{Addr: BDF{Bus: 1}})
	k.Go("t", func(p *sim.Proc) {
		d.Bind(p, "a", 0)
		d.Bind(p, "b", 0)
	})
	k.Run()
}

func TestUnbindUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	k := sim.NewKernel(1)
	topo := NewTopology()
	d := topo.AddDevice(&Device{Addr: BDF{Bus: 1}})
	k.Go("t", func(p *sim.Proc) { d.Unbind(p, 0) })
	k.Run()
}

func TestBindBoot(t *testing.T) {
	topo := NewTopology()
	d := topo.AddDevice(&Device{Addr: BDF{Bus: 1}})
	d.BindBoot("ice")
	if d.Driver() != "ice" {
		t.Errorf("driver = %q", d.Driver())
	}
}

func TestBDFString(t *testing.T) {
	if got := (BDF{Bus: 0x17, Dev: 2, Fn: 1}).String(); got != "17:02.1" {
		t.Errorf("BDF string = %q", got)
	}
}

func TestResetScopeString(t *testing.T) {
	if ResetSlot.String() != "slot" || ResetBus.String() != "bus" {
		t.Error("reset scope strings wrong")
	}
}
