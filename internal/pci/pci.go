// Package pci models the host PCI topology: buses, devices, SR-IOV
// physical/virtual functions, reset capabilities, and sysfs-style driver
// binding. The devset behaviour at the heart of the paper's first bottleneck
// (§3.2.2) is determined by this topology: devices without slot-level reset
// share a bus-level reset domain with every other device on their bus.
package pci

import (
	"fmt"
	"sort"
	"time"

	"fastiov/internal/sim"
)

// ResetScope describes the finest reset granularity a device supports.
type ResetScope uint8

const (
	// ResetBus means the device can only be reset together with every other
	// device on its bus (the common case for VFs on NICs like the Intel
	// E810 and IPU E2100, per §3.2.2).
	ResetBus ResetScope = iota
	// ResetSlot means the device supports slot-level (function-level)
	// reset and forms a singleton devset.
	ResetSlot
)

func (r ResetScope) String() string {
	if r == ResetSlot {
		return "slot"
	}
	return "bus"
}

// BDF is a PCI bus/device/function address.
type BDF struct {
	Bus, Dev, Fn int
}

func (a BDF) String() string { return fmt.Sprintf("%02x:%02x.%d", a.Bus, a.Dev, a.Fn) }

// Device is one PCI function.
type Device struct {
	Addr   BDF
	Name   string
	Vendor uint16
	DevID  uint16
	Reset  ResetScope

	// IsVF marks SR-IOV virtual functions; Parent is their PF.
	IsVF   bool
	Parent *Device

	driver string
	bus    *Bus
}

// Driver returns the name of the currently bound driver ("" if unbound).
func (d *Device) Driver() string { return d.driver }

// Bus returns the bus this device sits on.
func (d *Device) Bus() *Bus { return d.bus }

// Bind binds the device to a driver, charging the bind cost (sysfs
// driver_override + probe). Binding over an existing driver panics: callers
// must unbind first, as the kernel requires.
func (d *Device) Bind(p *sim.Proc, driver string, cost time.Duration) {
	if d.driver != "" {
		panic(fmt.Sprintf("pci: %s already bound to %s", d.Addr, d.driver))
	}
	if cost > 0 {
		p.Sleep(cost)
	}
	d.driver = driver
}

// BindBoot binds without charging time, for drivers attached during host
// boot (outside the measured startup window).
func (d *Device) BindBoot(driver string) {
	if d.driver != "" {
		panic(fmt.Sprintf("pci: %s already bound to %s", d.Addr, d.driver))
	}
	d.driver = driver
}

// Unbind releases the device from its driver.
func (d *Device) Unbind(p *sim.Proc, cost time.Duration) {
	if d.driver == "" {
		panic(fmt.Sprintf("pci: %s not bound", d.Addr))
	}
	if cost > 0 {
		p.Sleep(cost)
	}
	d.driver = ""
}

// Bus is one PCI bus segment.
type Bus struct {
	Number  int
	devices []*Device
}

// Devices returns the devices on the bus (not a copy).
func (b *Bus) Devices() []*Device { return b.devices }

// Topology is the host's set of PCI buses.
type Topology struct {
	buses map[int]*Bus
	byBDF map[BDF]*Device
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{buses: make(map[int]*Bus), byBDF: make(map[BDF]*Device)}
}

// AddBus creates (or returns) bus number n.
func (t *Topology) AddBus(n int) *Bus {
	if b, ok := t.buses[n]; ok {
		return b
	}
	b := &Bus{Number: n}
	t.buses[n] = b
	return b
}

// AddDevice places a device on a bus. The device's Addr.Bus must match.
func (t *Topology) AddDevice(d *Device) *Device {
	b := t.AddBus(d.Addr.Bus)
	if _, dup := t.byBDF[d.Addr]; dup {
		panic("pci: duplicate BDF " + d.Addr.String())
	}
	d.bus = b
	b.devices = append(b.devices, d)
	t.byBDF[d.Addr] = d
	return d
}

// Lookup finds a device by address.
func (t *Topology) Lookup(addr BDF) (*Device, bool) {
	d, ok := t.byBDF[addr]
	return d, ok
}

// Buses returns all buses.
func (t *Topology) Buses() []*Bus {
	out := make([]*Bus, 0, len(t.buses))
	for _, b := range t.buses {
		out = append(out, b)
	}
	return out
}

// Clone deep-copies the topology: every bus and device is duplicated,
// preserving per-bus device order (which higher layers iterate) and driver
// bindings. The returned map translates original device pointers to their
// clones so sibling structures (NIC VF pools, VFIO registrations) can be
// re-pointed consistently.
func (t *Topology) Clone() (*Topology, map[*Device]*Device) {
	nt := NewTopology()
	remap := make(map[*Device]*Device, len(t.byBDF))
	nums := make([]int, 0, len(t.buses))
	for n := range t.buses {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	for _, n := range nums {
		b := t.buses[n]
		nb := nt.AddBus(n)
		for _, d := range b.devices {
			nd := &Device{
				Addr:   d.Addr,
				Name:   d.Name,
				Vendor: d.Vendor,
				DevID:  d.DevID,
				Reset:  d.Reset,
				IsVF:   d.IsVF,
				driver: d.driver,
				bus:    nb,
			}
			nb.devices = append(nb.devices, nd)
			nt.byBDF[nd.Addr] = nd
			remap[d] = nd
		}
	}
	// Parent pointers resolve in a second pass: a VF's PF may sit anywhere
	// in the walk order.
	for d, nd := range remap {
		if d.Parent != nil {
			nd.Parent = remap[d.Parent]
		}
	}
	return nt, remap
}
