// Serverless: run the paper's four SeBS benchmark applications (§6.6) twice
// over — first for real (the actual Go implementations: image resize,
// DEFLATE compression, graph BFS, model inference), then on the simulated
// testbed comparing vanilla SR-IOV against FastIOV at concurrency 50.
//
//	go run ./examples/serverless
package main

import (
	"fmt"
	"log"
	"time"

	"fastiov"
	"fastiov/internal/serverless"
	"fastiov/internal/sim"
	"fastiov/internal/stats"
)

func main() {
	runReal()
	fmt.Println()
	runSimulated()
}

// runReal executes the actual workload implementations.
func runReal() {
	fmt.Println("real workload implementations:")

	start := time.Now()
	img := serverless.GenerateTestImage(1920, 1080)
	thumb, err := serverless.ResizeThumbnail(img, 100, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  image:       1920x1080 -> %dx%d thumbnail in %v\n",
		thumb.Bounds().Dx(), thumb.Bounds().Dy(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	data := serverless.GenerateCompressibleData(9_700_000)
	zipped, err := serverless.Compress(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  compression: 9.7MB -> %.1fMB in %v\n",
		float64(len(zipped))/1e6, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	g := serverless.GenerateGraph(100000, 4, 7)
	_, visited, err := serverless.BFS(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  scientific:  BFS visited %d/100000 nodes in %v\n",
		visited, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	model := serverless.NewModel(3*224*224, 64, 1000, 42)
	input := make([]float32, 3*224*224)
	for i := range input {
		input[i] = float32(i%255) / 255
	}
	class, prob, err := model.Classify(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  inference:   class %d (p=%.3f) in %v\n",
		class, prob, time.Since(start).Round(time.Millisecond))
}

// runSimulated reproduces the Fig. 15 comparison at reduced concurrency.
func runSimulated() {
	const n = 50
	fmt.Printf("simulated task completion (concurrency=%d):\n", n)
	fmt.Printf("  %-12s %-12s %-12s %s\n", "app", "vanilla", "fastiov", "reduction")
	for _, app := range fastiov.Apps() {
		van := completionTimes(fastiov.BaselineVanilla, app, n)
		fio := completionTimes(fastiov.BaselineFastIOV, app, n)
		fmt.Printf("  %-12s %-12v %-12v %.1f%%\n", app.Name,
			van.Mean().Round(10*time.Millisecond), fio.Mean().Round(10*time.Millisecond),
			100*stats.ReductionRatio(van.Mean(), fio.Mean()))
	}
}

func completionTimes(baseline string, app fastiov.App, n int) *stats.Sample {
	opts, err := fastiov.OptionsFor(baseline)
	if err != nil {
		log.Fatal(err)
	}
	host, err := fastiov.NewHost(fastiov.DefaultHostSpec(), opts)
	if err != nil {
		log.Fatal(err)
	}
	times := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		i := i
		at := host.K.Rand().Duration(opts.StartJitter)
		host.K.GoAt(at, fmt.Sprintf("task-%d", i), func(p *sim.Proc) {
			issued := p.Now()
			sb, err := host.Eng.RunPodSandbox(p, i)
			if err != nil {
				log.Fatal(err)
			}
			if err := serverless.Execute(p, host.Eng, sb, app); err != nil {
				log.Fatal(err)
			}
			times[i] = p.Now() - issued
		})
	}
	host.K.Run()
	return stats.FromDurations(times)
}
