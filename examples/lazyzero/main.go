// Lazyzero: use the real decoupled lazy-zeroing arena (§4.3.2) as a buffer
// pool recycled between distrusting tenants, and compare three clearing
// disciplines:
//
//   - eager: zero every page at allocation (vanilla VFIO),
//
//   - lazy: zero on first touch only (FastIOV), so untouched pages are
//     never cleared,
//
//   - lazy + scrubber: the background thread drains the rest during idle
//     time, like fastiovd's kernel thread.
//
//     go run ./examples/lazyzero
package main

import (
	"fmt"
	"time"

	"fastiov"
)

const (
	pages    = 4096
	pageSize = 64 << 10 // 256 MB arena
	touched  = pages / 5
)

func main() {
	fmt.Printf("arena: %d pages x %dKB = %dMB; workload touches %d pages (20%%)\n\n",
		pages, pageSize>>10, pages*pageSize>>20, touched)

	// Eager: the whole arena is cleared before any work starts.
	eager := fastiov.NewArena(pages, pageSize)
	start := time.Now()
	eager.EagerZeroAll()
	for i := 0; i < touched; i++ {
		eager.Acquire(i)[0] = 1
	}
	fmt.Printf("eager zeroing:        ready after %v (every page cleared up front)\n",
		time.Since(start).Round(time.Millisecond))

	// Lazy: only the touched 20% is ever cleared.
	lazy := fastiov.NewArena(pages, pageSize)
	start = time.Now()
	for i := 0; i < touched; i++ {
		lazy.Acquire(i)[0] = 1
	}
	fmt.Printf("lazy zeroing:         ready after %v (%d pages cleared, %d never touched)\n",
		time.Since(start).Round(time.Millisecond),
		lazy.LazyZeroed.Load(), int64(pages)-lazy.LazyZeroed.Load())

	// Lazy + scrubber: same startup latency, but the background thread
	// clears the remainder so later touches are free.
	scrubbed := fastiov.NewArena(pages, pageSize)
	scrubbed.StartScrubber(time.Millisecond, 256)
	start = time.Now()
	for i := 0; i < touched; i++ {
		scrubbed.Acquire(i)[0] = 1
	}
	fast := time.Since(start)
	for {
		dirty := 0
		for i := 0; i < scrubbed.Pages(); i++ {
			if scrubbed.Dirty(i) {
				dirty++
			}
		}
		if dirty == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	scrubbed.StopScrubber()
	fmt.Printf("lazy + scrubber:      ready after %v; background cleared %d pages\n",
		fast.Round(time.Millisecond), scrubbed.ScrubZeroed.Load())

	// The correctness story: an owner-written page (kernel image analog)
	// is never destroyed by lazy zeroing.
	a := fastiov.NewArena(4, 4096)
	kernel := a.MarkWritten(0)
	copy(kernel, []byte("vmlinuz"))
	if got := a.Acquire(0); string(got[:7]) == "vmlinuz" {
		fmt.Println("\ninstant-zeroing list analog: owner data survived first touch")
	} else {
		fmt.Println("\nBUG: owner data was lazily zeroed")
	}

	// And recycling is safe: released pages never leak to the next owner.
	secret := a.Acquire(1)
	copy(secret, []byte("tenant-a-secret"))
	a.Release(1)
	next := a.Acquire(1)
	leaked := false
	for _, b := range next[:16] {
		if b != 0 {
			leaked = true
		}
	}
	fmt.Printf("recycled page leaked previous tenant's data: %v\n", leaked)
}
