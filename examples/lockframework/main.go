// Lockframework: use the real parent-child lock framework (§4.2.1) outside
// the simulator, in the scenario the paper generalizes from — a device
// registry whose members are opened concurrently while registry-wide
// operations need a consistent view.
//
// The example measures wall-clock time for N goroutines hammering
// open/close on distinct devices under (a) one global sync.Mutex (the
// vanilla VFIO design) and (b) the hierarchical decomposition, showing the
// inter-child parallelism the paper exploits.
//
//	go run ./examples/lockframework
package main

import (
	"fmt"
	"sync"
	"time"

	"fastiov"
)

const (
	devices  = 8
	opsPerG  = 30
	holdWork = time.Millisecond
)

// wait simulates the per-open device work. A VF function-level reset is a
// hardware wait, not CPU work, so blocking under the lock is the honest
// model — and it lets the parallelism contrast show even on one core.
func wait(d time.Duration) { time.Sleep(d) }

func globalMutexVersion() time.Duration {
	var mu sync.Mutex
	counts := make([]int, devices)
	start := time.Now()
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				mu.Lock()
				counts[d]++
				wait(holdWork)
				counts[d]--
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func parentChildVersion() time.Duration {
	ds := fastiov.NewDevset(devices)
	start := time.Now()
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				ds.Open(d)
				wait(holdWork)
				ds.Close(d)
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func main() {
	fmt.Printf("%d goroutines x %d open/close ops, %v of work under the lock\n\n",
		devices, opsPerG, holdWork)

	g := globalMutexVersion()
	fmt.Printf("global mutex (vanilla VFIO devset):   %v\n", g.Round(time.Millisecond))

	pc := parentChildVersion()
	fmt.Printf("parent-child lock (FastIOV, §4.2.1):  %v  (%.1fx faster)\n",
		pc.Round(time.Millisecond), float64(g)/float64(pc))

	// The consistency half: a devset-wide reset still excludes every open.
	ds := fastiov.NewDevset(devices)
	ds.Open(3)
	if ds.ResetIfIdle(func() {}) {
		fmt.Println("BUG: reset ran while device 3 was open")
	} else {
		fmt.Println("\nreset correctly refused while a device was open")
	}
	ds.Close(3)
	if ds.ResetIfIdle(func() { fmt.Println("reset ran once the devset was idle") }) {
		fmt.Printf("final devset total open count: %d\n", ds.TotalOpen())
	}
}
