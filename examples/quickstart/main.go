// Quickstart: boot a simulated host with the FastIOV CNI, start one secure
// container, and print what happened at every startup stage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"fastiov"
	"fastiov/internal/sim"
)

func main() {
	// A host with the paper's testbed spec and the full FastIOV
	// configuration: parent-child devset locking, async VF driver init,
	// image-mapping skip, and decoupled lazy zeroing.
	opts, err := fastiov.OptionsFor(fastiov.BaselineFastIOV)
	if err != nil {
		log.Fatal(err)
	}
	host, err := fastiov.NewHost(fastiov.DefaultHostSpec(), opts)
	if err != nil {
		log.Fatal(err)
	}

	// Start one secure container (crictl runp equivalent).
	host.K.Go("quickstart", func(p *sim.Proc) {
		sb, err := host.Eng.RunPodSandbox(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sandbox %d started at virtual time %v\n", sb.ID, p.Now())
		fmt.Printf("  VF: %s (fd %d, devset %d, lock mode %s)\n",
			sb.CNIRes.VF.Dev.Name, sb.MVM.VFDevice().FD(),
			sb.MVM.VFDevice().Set.ID, host.VFIO.Mode())
		fmt.Printf("  image region DMA-mapped: %v (FastIOV-S skips it)\n", !sb.MVM.ImageSkipped())
	})
	host.K.Run()

	fmt.Println("\nper-stage breakdown:")
	rec := host.Rec
	for _, sp := range rec.Spans() {
		fmt.Printf("  %-12s %8v -> %8v (%v)\n", sp.Stage,
			sp.Start.Round(time.Microsecond), sp.End.Round(time.Microsecond),
			sp.Dur().Round(time.Microsecond))
	}
	fmt.Printf("total startup: %v\n", rec.Total(0).Round(time.Microsecond))
	fmt.Printf("lazy zeroing: %d pages cleared on first-touch faults, %d by the background scrubber, %d instantly (firmware), %d corruptions\n",
		host.Lazy.LazyZeroed, host.Lazy.ScrubZeroed, host.Lazy.InstantZeroed, host.Lazy.Corruptions)
}
