module fastiov

go 1.23
