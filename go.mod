module fastiov

go 1.22
